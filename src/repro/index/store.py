"""Persistent hardware-fingerprint index (on-disk format v4).

On-disk layout under the index root::

    meta.json         entries (one per input file, failures included),
                      the row table (one spec per stored shard row:
                      whole designs plus their subgraph chunks), model
                      hash, pipeline options, shard specs, IVF config,
                      last-build report — always written last,
                      atomically: its presence marks a complete index
    shards/*.f32      unit-normalized float32 embedding rows as raw
                      memory-mapped shard files (append-only; see
                      :mod:`repro.index.shards`)
    ivf-NNNNN.npz     optional coarse quantizer for sublinear queries
                      (:mod:`repro.index.ann`)
    signatures.json   structural WL signatures, one per embedded entry
                      (:mod:`repro.index.wlsig`); powers the rank-fusion
                      channel that keeps partial theft detectable where
                      chunk cosines saturate
    model.npz         the exact model that produced the embeddings
    cache/            content-addressed DFG cache (survives rebuilds;
                      absent when the index was built with
                      ``use_cache=False``)

v4 stores each design at multiple granularities: one whole-design row
plus one row per overlapping subgraph chunk (:mod:`repro.index.chunks`
— fanin cones, connected regions, topological windows).  ``meta.json``
carries a ``rows`` table mapping every shard row to either a design or
a (parent, region) chunk, and queries aggregate chunk hits back to
parent designs (:meth:`~repro.index.engine.QueryEngine.query_groups`),
so a stolen *fraction* of a design still matches its victim head-on.
Designs too small to chunk store exactly one row, and an index with no
chunk rows serves bit-identically to v3.

Opening an index is ``stat`` + ``mmap`` — no decompression, no
re-normalization (v2 paid both on every load).  Queries run through the
batched :class:`~repro.index.engine.QueryEngine`; the embedding service
and frontend are cached on the index object so a lookup service embeds
each suspect once and never re-fingerprints the model per call.
``add_to_index`` grows the corpus in place: new files append one shard
plus meta entries without re-embedding or rewriting what is already
stored.
"""

import json
import time
import zipfile
from dataclasses import dataclass  # noqa: F401 - re-export for back-compat
from pathlib import Path

import numpy as np

from repro.core.persist import load_model, save_model
from repro.errors import IndexStoreError, ModelError
from repro.index.ann import (
    IVF_NAME,
    MIN_ROWS as IVF_MIN_ROWS,
    REFIT_GROWTH,
    IVFIndex,
    ivf_filename,
)
from repro.index.cache import DFGCache
from repro.index.chunks import ChunkConfig, extract_chunks
from repro.index.engine import QueryEngine, QueryHit  # noqa: F401
from repro.index.extractor import CorpusExtractor
from repro.index.service import EmbeddingService
from repro.index.shards import (
    ShardStore,
    next_shard_ordinal,
    unit_rows_f32,
    write_shard,
)
from repro.index.wlsig import (
    SIG_NAME,
    SignatureScorer,
    load_signatures,
    wl_colors,
    write_signatures,
)
from repro.ir.frontends import RTLFrontend, get_frontend

META_NAME = "meta.json"
MODEL_NAME = "model.npz"
CACHE_DIR = "cache"
#: v2's single compressed ``embeddings.npz`` store; only read by
#: :func:`migrate_v2`.
LEGACY_EMBEDDINGS_NAME = "embeddings.npz"
#: v3: embeddings live in raw memory-mapped float32 shards (meta carries
#: the shard specs) with an optional IVF quantizer.  v4 adds the
#: ``rows`` table and multi-granularity chunk rows.  v2/v3 indexes are
#: refused with a migrate/rebuild message — ``migrate_index`` converts
#: them in place without re-embedding.
FORMAT_VERSION = 4


def _write_meta(root, meta):
    """Atomic ``meta.json`` write — always the last file to land."""
    tmp = root / (META_NAME + ".tmp")
    tmp.write_text(json.dumps(meta, indent=1, sort_keys=True))
    tmp.replace(root / META_NAME)


def _read_meta(root):
    meta_path = Path(root) / META_NAME
    if not meta_path.is_file():
        raise IndexStoreError(
            f"no fingerprint index at {root} (missing {META_NAME}; "
            f"run 'gnn4ip index build' first)")
    try:
        return json.loads(meta_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexStoreError(f"corrupt index metadata: {exc}") from exc


class FingerprintIndex:
    """A loaded fingerprint index (see module docstring for the layout)."""

    def __init__(self, root, meta, shards, ivf=None):
        self.root = Path(root)
        self.meta = meta
        self.shards = shards
        self.ivf = ivf
        self.entries = meta["entries"]
        self._ok_entries = [e for e in self.entries if e["status"] == "ok"]
        #: Row table: one spec per stored shard row, in global row order
        #: ({"kind": "design", "name": ...} or {"kind": "chunk",
        #: "parent": ..., "region": {...}}).
        self.rows = meta.get("rows") or []
        self._chunk_rows = 0
        self._design_row_by_name = {}
        for row, spec in enumerate(self.rows):
            if spec.get("kind") == "chunk":
                self._chunk_rows += 1
            else:
                self._design_row_by_name[spec["name"]] = row
        self._row_by_key = {}
        self._entry_by_key = {}
        for entry in self._ok_entries:
            self._row_by_key.setdefault(
                entry["key"], self._design_row_by_name[entry["name"]])
            self._entry_by_key.setdefault(entry["key"], entry)
        self._matrix = None
        self._engine = None
        self._frontend = None
        self._service = None
        self._scorer_loaded = False
        self._scorer = None

    # -- loading -------------------------------------------------------------
    @classmethod
    def load(cls, root):
        """Open an existing index; raises IndexStoreError when unusable.

        Opening maps the shards read-only and validates their sizes
        against the metadata (catching partial/truncated writes) but
        reads no embedding data.
        """
        root = Path(root)
        meta = _read_meta(root)
        version = meta.get("version")
        if version == 2:
            raise IndexStoreError(
                f"index at {root} uses the retired v2 format (compressed "
                f"float64 embeddings.npz, decompressed and re-normalized "
                f"on every open); run 'gnn4ip index migrate {root}' to "
                f"convert it in place without re-embedding, or rebuild "
                f"with 'gnn4ip index build'")
        if version == 3:
            raise IndexStoreError(
                f"index at {root} uses the retired v3 format (no row "
                f"table — single-granularity rows only); run 'gnn4ip "
                f"index migrate {root}' to convert it in place without "
                f"re-embedding (rebuild to also index subgraph chunks)")
        if version != FORMAT_VERSION:
            raise IndexStoreError(
                f"index version {version!r} is not supported "
                f"(expected {FORMAT_VERSION}); rebuild the index")
        store_spec = meta.get("store") or {}
        shards = ShardStore(root, store_spec.get("hidden", 0),
                            store_spec.get("shards", []))
        rows = meta.get("rows") or []
        ok_rows = sum(1 for e in meta["entries"] if e["status"] == "ok")
        design_rows = sum(1 for r in rows if r.get("kind") != "chunk")
        if design_rows != ok_rows:
            raise IndexStoreError(
                f"row table lists {design_rows} design rows but the "
                f"metadata lists {ok_rows} embedded entries "
                f"(partial write? rebuild the index)")
        if shards.rows != len(rows):
            raise IndexStoreError(
                f"embedding store has {shards.rows} rows but the "
                f"metadata lists {len(rows)} rows "
                f"(partial write? rebuild the index)")
        shards.open()  # size validation; no data is read
        # The quantizer is an optional accelerator, never a correctness
        # dependency: a missing, corrupt, or row-count-stale ivf.npz
        # (e.g. a crash between the quantizer write and the meta write
        # during `index add`) degrades to exact serving instead of
        # refusing an otherwise-intact index.  The next add/build refits
        # and heals it.
        ivf = None
        if meta.get("ivf"):
            try:
                ivf = IVFIndex.load(_ivf_path(root, meta))
            except IndexStoreError:
                ivf = None
            if ivf is not None and ivf.rows != len(rows):
                ivf = None
        return cls(root, meta, shards, ivf=ivf)

    def model(self, **kwargs):
        """The model persisted with the index."""
        return load_model(self.root / MODEL_NAME, **kwargs)

    def frontend(self):
        """A frontend configured like the one the index was built with.

        Cached on the index: queries must extract suspects at the same
        level and with the same options the corpus was extracted with,
        and a lookup service reuses one frontend across calls.

        Raises:
            IndexStoreError: when the current feature schema no longer
                matches the one the index was built under (e.g. the
                vocabulary changed in a later version) — stored embeddings
                would be silently incomparable to fresh ones.
        """
        if self._frontend is not None:
            return self._frontend
        frontend = get_frontend(self.level,
                                do_trim=self.meta["options"].get("do_trim",
                                                                 True))
        stored = self.meta["options"].get("schema")
        if stored is not None and stored != frontend.schema_fingerprint():
            raise IndexStoreError(
                f"the feature schema has changed since this index was "
                f"built ({stored} -> {frontend.schema_fingerprint()}); "
                f"rebuild the index")
        self._frontend = frontend
        return frontend

    def pipeline(self):
        """Deprecated alias for :meth:`frontend` (same extract interface)."""
        return self.frontend()

    @property
    def level(self):
        """Extraction level the index was built at (``rtl``/``netlist``)."""
        return self.meta["options"].get("level", "rtl")

    @property
    def top(self):
        """Top-module option the index was built with (usually None)."""
        return self.meta["options"]["top"]

    @property
    def use_cache(self):
        """Whether this index keeps a DFG cache (``--no-cache`` builds
        must not grow one behind the operator's back)."""
        return self.meta["options"].get("use_cache", True)

    # -- queries -------------------------------------------------------------
    def __len__(self):
        return len(self._ok_entries)

    @property
    def model_hash(self):
        return self.meta["model_hash"]

    @property
    def matrix(self):
        """The stored (unit float32) matrix, materialized on first use.

        The serving path never needs this — the engine scores straight
        off the memmaps; it exists for rebuild reuse and inspection.
        """
        if self._matrix is None:
            self._matrix = self.shards.matrix()
        return self._matrix

    @property
    def engine(self):
        """The batched :class:`QueryEngine` over the mapped shards."""
        if self._engine is None:
            self._engine = QueryEngine(self.shards.blocks(),
                                       self._row_entries(), ivf=self.ivf)
        return self._engine

    def _row_entries(self):
        """Per-shard-row entry dicts for the engine.

        Without chunk rows this is exactly the ok entries (the engine
        then serves bit-identically to v3).  With chunks, every row —
        design or chunk — gets a dict carrying the parent design's
        ``parent_id`` (ordinal among ok entries) so the engine can
        aggregate chunk hits back to designs.
        """
        if not self._chunk_rows:
            return self._ok_entries
        by_name = {e["name"]: (ordinal, e)
                   for ordinal, e in enumerate(self._ok_entries)}
        entries = []
        counters = {}
        for spec in self.rows:
            if spec.get("kind") == "chunk":
                parent = spec["parent"]
                ordinal, entry = by_name[parent]
                nth = counters.get(parent, 0)
                counters[parent] = nth + 1
                entries.append({
                    "kind": "chunk",
                    "name": f"{parent}#chunk{nth}",
                    "path": entry["path"],
                    "design": entry["design"],
                    "parent": parent,
                    "parent_id": ordinal,
                    "region": spec.get("region"),
                })
            else:
                ordinal, entry = by_name[spec["name"]]
                entries.append(dict(entry, parent_id=ordinal))
        return entries

    # -- chunking ------------------------------------------------------------
    @property
    def has_chunks(self):
        """True when any stored row is a subgraph chunk.  A chunking-
        enabled build over designs too small to chunk stores none, and
        then behaves exactly like a single-granularity index."""
        return self._chunk_rows > 0

    @property
    def chunk_row_count(self):
        return self._chunk_rows

    def chunk_config(self):
        """The :class:`~repro.index.chunks.ChunkConfig` the index was
        built with, or ``None`` when chunking was disabled."""
        spec = self.meta.get("chunks")
        return None if not spec else ChunkConfig.from_dict(spec)

    def suspect_parts(self, graphs):
        """Decompose suspect graphs the same way the corpus is stored.

        Returns ``(parts, offsets, regions)``: the flat list of part
        graphs for all suspects (each suspect contributes itself first,
        then its chunks under the stored chunk config), group prefix
        offsets (``len(graphs) + 1``), and per-part region descriptors
        (``None`` for the whole-suspect parts).  On a chunk-less index
        every suspect is a single part.
        """
        config = self.chunk_config()
        parts, regions, offsets = [], [], [0]
        for graph in graphs:
            parts.append(graph)
            regions.append(None)
            if config is not None and self.has_chunks:
                for sub, region in extract_chunks(graph, config):
                    parts.append(sub)
                    regions.append(region)
            offsets.append(len(parts))
        return parts, offsets, regions

    def signature_scorer(self):
        """The structural :class:`~repro.index.wlsig.SignatureScorer`,
        or ``None`` when this index cannot serve the channel.

        Loaded lazily from ``signatures.json`` and cached.  The scorer
        only activates when *every* ok entry has a stored signature —
        a partially-signed corpus (e.g. ``index add`` onto a migrated
        index) would silently never rank the unsigned designs.
        """
        if not self._scorer_loaded:
            self._scorer_loaded = True
            stored = load_signatures(self.root)
            if stored is not None:
                colors, radius = stored
                if all(e["name"] in colors for e in self._ok_entries):
                    self._scorer = SignatureScorer(
                        [e["name"] for e in self._ok_entries],
                        [e["design"] for e in self._ok_entries],
                        colors, radius=radius)
        return self._scorer

    def suspect_struct(self, graphs):
        """Per-suspect structural score vectors for rank fusion, or
        ``None`` on an index without usable signatures."""
        scorer = self.signature_scorer()
        if scorer is None:
            return None
        return [scorer.scores(wl_colors(graph, scorer.radius))
                for graph in graphs]

    def query_parts(self, vectors, offsets, regions=None, k=5, delta=0.0,
                    nprobe=None, exact=False, struct=None):
        """Ranked parent designs for part-vector groups (one group per
        suspect; see :meth:`suspect_parts`).  ``struct`` carries the
        optional per-suspect structural scores (:meth:`suspect_struct`)
        for rank fusion.  Single-part groups on a chunk-less index with
        no structural scores take the legacy (bit-identical) path."""
        if (struct is None and not self.engine.chunked
                and len(vectors) == len(offsets) - 1):
            return self.engine.query_many(vectors, k=k, delta=delta,
                                          nprobe=nprobe, exact=exact)
        return self.engine.query_groups(vectors, offsets, regions, k=k,
                                        delta=delta, nprobe=nprobe,
                                        exact=exact, struct=struct)

    def partial_parts(self, vectors, offsets, regions=None, k=5,
                      delta=0.0, nprobe=None, exact=False, fused=None,
                      shards=None):
        """Worker half of :meth:`query_parts` for scatter-gather serving.

        Scores only the shard files in ``shards`` and returns mergeable
        partials (:meth:`~repro.index.engine.QueryEngine.partial_many` /
        ``partial_groups``).  ``fused`` flags which groups the front
        will fuse — the structural scores themselves never reach the
        workers (fuse at the front).  The plain/grouped dispatch mirrors
        :meth:`query_parts` exactly, with ``fused is None`` standing in
        for ``struct is None``, so a worker and a single process route
        any given request the same way.
        """
        if (fused is None and not self.engine.chunked
                and len(vectors) == len(offsets) - 1):
            return self.engine.partial_many(vectors, k=k, delta=delta,
                                            nprobe=nprobe, exact=exact,
                                            shards=shards)
        return self.engine.partial_groups(vectors, offsets, regions, k=k,
                                          delta=delta, nprobe=nprobe,
                                          exact=exact, fused=fused,
                                          shards=shards)

    def merge_parts(self, partials, offsets, regions=None, k=5,
                    delta=0.0, struct=None):
        """Gather half of :meth:`query_parts`: merge partition partials.

        ``partials`` holds one :meth:`partial_parts` result per
        partition (disjoint shard subsets, same request).  Returns hit
        lists bit-identical to :meth:`query_parts` on the full index;
        ``struct`` is applied here, after the merge.
        """
        if (struct is None and not self.engine.chunked
                and int(offsets[-1]) == len(offsets) - 1):
            return self.engine.merge_many(partials, k=k, delta=delta)
        return self.engine.merge_groups(partials, offsets, regions, k=k,
                                        delta=delta, struct=struct)

    def lookup_key(self, key):
        """Stored (unit float32) embedding for a content key, or None."""
        row = self._row_by_key.get(key)
        return None if row is None else self.shards.row(row)

    def entry_for_key(self, key):
        """The ok-entry dict whose embedding ``lookup_key`` would return,
        or None when the content key is not indexed."""
        row = self._row_by_key.get(key)
        return None if row is None else self._ok_entries[row]

    def query_vector(self, vector, k=5, delta=0.0, nprobe=None,
                     exact=False):
        """Top-k entries by cosine similarity to ``vector``.

        Delegates to :meth:`query_many` with a batch of one, so single
        and batched queries share one code path (and, in exact mode, are
        bit-identical).
        """
        return self.query_many([vector], k=k, delta=delta, nprobe=nprobe,
                               exact=exact)[0]

    def query_many(self, vectors, k=5, delta=0.0, nprobe=None,
                   exact=False):
        """Top-k hit lists for a whole batch of query vectors."""
        return self.engine.query_many(vectors, k=k, delta=delta,
                                      nprobe=nprobe, exact=exact)

    def service_for(self, model, batch_size=64):
        """A fingerprint-checked :class:`EmbeddingService` for ``model``.

        Cached on the index (keyed by model identity): repeated
        ``query_graph`` calls stop re-hashing every model weight per
        call, which used to dominate small-query latency.

        Raises:
            IndexStoreError: when ``model`` is not the model the index
                was built with (its embeddings would not be comparable).
        """
        if self._service is None or self._service.model is not model:
            service = EmbeddingService(model, batch_size=batch_size)
            if service.fingerprint != self.model_hash:
                raise IndexStoreError(
                    "model fingerprint does not match the index "
                    "(rebuild the index or query with its own model)")
            self._service = service
        return self._service

    def query_graph(self, graph, model, k=5, nprobe=None, exact=False):
        """Embed a suspect graph and rank it against the index."""
        return self.query_graphs([graph], model, k=k, nprobe=nprobe,
                                 exact=exact)[0]

    def query_graphs(self, graphs, model, k=5, nprobe=None, exact=False):
        """Embed many suspects in one batched pass and rank each.

        On a chunked index every suspect is decomposed like the corpus
        (:meth:`suspect_parts`), all parts are embedded in the same
        batched pass, and chunk-level scores are aggregated back to one
        ranked design list per suspect.  When the index carries
        structural signatures (``signatures.json``), ranking fuses the
        embedding channel with WL reverse containment
        (:mod:`repro.index.wlsig`) so a grafted fraction of a stored
        design outranks incidental host overlap.

        Raises:
            IndexStoreError: when ``model`` is not the model the index was
                built with (its embeddings would not be comparable).
        """
        service = self.service_for(model)
        struct = self.suspect_struct(graphs)
        if not self.has_chunks and struct is None:
            vectors = service.embed_graphs(graphs)
            return self.query_many(vectors, k=k, delta=model.delta,
                                   nprobe=nprobe, exact=exact)
        parts, offsets, regions = self.suspect_parts(graphs)
        vectors = service.embed_graphs(parts)
        return self.query_parts(vectors, offsets, regions, k=k,
                                delta=model.delta, nprobe=nprobe,
                                exact=exact, struct=struct)

    def stats(self):
        """Summary dict for reports and the ``index stats`` command."""
        designs = {}
        failures = 0
        for entry in self.entries:
            if entry["status"] == "ok":
                designs[entry["design"]] = designs.get(entry["design"], 0) + 1
            else:
                failures += 1
        # Probe the cache only when its directory exists: stats on a
        # --no-cache index must not conjure an empty cache/ directory.
        cache_entries = cache_bytes = 0
        if (self.root / CACHE_DIR).is_dir():
            cache = DFGCache(self.root / CACHE_DIR)
            cache_entries = cache.entry_count()
            cache_bytes = cache.disk_bytes()
        return {
            "level": self.level,
            "entries": len(self.entries),
            "embedded": len(self),
            "failures": failures,
            "designs": len(designs),
            "design_rows": len(self),
            "chunk_rows": self._chunk_rows,
            "signed_entries": (len(self._ok_entries)
                               if self.signature_scorer() is not None
                               else 0),
            "hidden": self.shards.hidden if len(self) else 0,
            "shards": len(self.shards.specs),
            "ivf_clusters": self.ivf.n_clusters if self.ivf else 0,
            "model_hash": self.model_hash,
            "cache_entries": cache_entries,
            "cache_bytes": cache_bytes,
            "build": self.meta.get("build", {}),
        }


def _unique_names(results, taken=()):
    """File stems, suffixed where needed so index names stay unique.

    ``taken`` seeds the reserved set with names already in the index, so
    incremental adds cannot collide with existing entries.
    """
    taken = set(taken)
    names = []
    for result in results:
        candidate, suffix = result.name, 1
        while candidate in taken:
            suffix += 1
            candidate = f"{result.name}#{suffix}"
        taken.add(candidate)
        names.append(candidate)
    return names


def _result_entries(results, names):
    entries = []
    for result, name in zip(results, names):
        entry = {"name": name, "path": result.path, "key": result.key,
                 "status": "ok" if result.ok else "error"}
        if result.ok:
            entry["design"] = result.graph.name
            entry["nodes"] = len(result.graph)
            entry["edges"] = result.graph.num_edges
            entry["cached"] = result.cached
        else:
            entry["error"] = result.error
        entries.append(entry)
    return entries


def _next_ivf_name(root):
    """Generation-named quantizer file nothing on disk uses yet.

    Like shards, the quantizer is never overwritten in place: a rebuild
    or add writes a fresh ``ivf-NNNNN.npz`` and the old one is cleaned
    only after the new ``meta.json`` lands, so a crash in between leaves
    the previous meta paired with exactly the quantizer it described.
    """
    taken = -1
    for path in Path(root).glob("ivf-*.npz"):
        stem = path.name[len("ivf-"):-len(".npz")]
        if stem.isdigit():
            taken = max(taken, int(stem))
    return ivf_filename(taken + 1)


def _ivf_path(root, meta):
    return Path(root) / meta["ivf"].get("file", IVF_NAME)


def _maybe_fit_ivf(root, unit_matrix, meta):
    """Fit + persist the coarse quantizer when the corpus is big enough.

    ``fitted_rows`` records how many rows the k-means actually saw, so
    later appends know when assign-only growth has outrun the centroids
    and a re-fit is due (:data:`~repro.index.ann.REFIT_GROWTH`).
    """
    if len(unit_matrix) >= IVF_MIN_ROWS:
        ivf = IVFIndex.fit(unit_matrix)
        name = _next_ivf_name(root)
        ivf.save(root / name)
        meta["ivf"] = {"clusters": ivf.n_clusters, "file": name,
                       "fitted_rows": len(unit_matrix)}
    else:
        meta["ivf"] = None


def _clean_stale_files(root, meta):
    """Drop files the just-written meta orphaned (the legacy v2 store,
    unreferenced shards, superseded quantizers)."""
    (root / LEGACY_EMBEDDINGS_NAME).unlink(missing_ok=True)
    live = {spec["file"] for spec in meta["store"]["shards"]}
    shard_dir = root / "shards"
    if shard_dir.is_dir():
        for path in shard_dir.glob("shard-*.f32"):
            if path.name not in live:
                path.unlink(missing_ok=True)
    live_ivf = (meta["ivf"] or {}).get("file") if meta.get("ivf") else None
    for path in Path(root).glob("ivf*.npz"):
        if path.name != live_ivf:
            path.unlink(missing_ok=True)


def build_index(root, paths, model, pipeline=None, jobs=None,
                use_cache=True, top=None, batch_size=64, level=None,
                frontend=None, chunks=True, chunk_config=None,
                progress=None):
    """Build (or rebuild) a fingerprint index over Verilog files.

    Extraction fans out over worker processes and reuses the index's graph
    cache; embedding runs batched.  Files the frontend rejects become
    failure entries instead of aborting the build.

    Args:
        level: extraction level (``rtl`` / ``netlist``); defaults to the
            level of the model's featurizer, so a netlist-trained model
            indexes at the netlist level without extra flags.
        frontend: explicit :mod:`repro.ir.frontends` frontend (overrides
            ``level`` and ``pipeline``).
        chunks: also store one embedding row per subgraph chunk of each
            design (:mod:`repro.index.chunks`), enabling partial-theft
            matching; designs too small to chunk store only their
            whole-design row.
        chunk_config: :class:`~repro.index.chunks.ChunkConfig` override
            (defaults apply when ``None``).
        progress: optional ``callback(done, total)`` forwarded to the
            extraction phase (the build's dominant cost).

    Returns:
        (index, report) — the loaded :class:`FingerprintIndex` and a dict
        describing the build (counts, cache stats, timings).

    Raises:
        ModelError: when the model's featurizer level does not match the
            requested extraction level (its embeddings would be garbage).
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    paths = [str(p) for p in paths]
    if not paths:
        raise IndexStoreError("no input files to index")

    model_level = getattr(model.encoder, "featurizer", None)
    model_level = model_level.level if model_level is not None else "rtl"
    if frontend is None:
        if pipeline is not None:
            if level not in (None, "rtl"):
                raise ValueError(
                    f"pipeline= selects the RTL frontend and conflicts "
                    f"with level={level!r}; pass frontend= instead")
            frontend = RTLFrontend(pipeline=pipeline)
        else:
            frontend = get_frontend(level if level is not None
                                    else model_level)
    if frontend.level != model_level:
        raise ModelError(
            f"cannot build a {frontend.level}-level index with a "
            f"{model_level}-level model (train with --level "
            f"{frontend.level} or change --level)")

    start = time.perf_counter()
    cache = DFGCache(root / CACHE_DIR) if use_cache else None
    extractor = CorpusExtractor(cache=cache, jobs=jobs, frontend=frontend)
    results = extractor.extract_paths(paths, top=top, progress=progress)
    extract_seconds = time.perf_counter() - start

    ok = [r for r in results if r.ok]
    service = EmbeddingService(model, batch_size=batch_size)
    chunk_opts = (chunk_config or ChunkConfig()) if chunks else None
    per_ok_chunks = [extract_chunks(r.graph, chunk_opts) if chunk_opts
                     else [] for r in ok]

    # Rebuild fast path: embeddings from a previous build of this index
    # are reused for unchanged content keys, provided the model is the
    # same one (fingerprint match).  Chunk rows are reused too, when the
    # chunk options are unchanged (same content + same config => the
    # same chunk set).  --no-cache recomputes everything.
    previous = {}
    previous_chunks = {}
    if use_cache:
        try:
            old = FingerprintIndex.load(root)
            if old.model_hash == service.fingerprint:
                matrix = old.matrix
                key_by_name = {e["name"]: e["key"]
                               for e in old._ok_entries}
                same_chunks = (chunk_opts is not None
                               and old.meta.get("chunks")
                               == chunk_opts.as_dict())
                for row, spec in enumerate(old.rows):
                    if spec.get("kind") == "chunk":
                        if same_chunks:
                            key = key_by_name[spec["parent"]]
                            previous_chunks.setdefault(key, []).append(
                                matrix[row])
                    else:
                        previous[key_by_name[spec["name"]]] = matrix[row]
            # .matrix is a materialized copy; drop the old index now so
            # its shard memmaps are closed before cleanup unlinks the
            # files (deleting a mapped file fails on some platforms).
            del old
        except IndexStoreError:
            pass

    embed_start = time.perf_counter()
    fresh = [r for r in ok if r.key not in previous]
    # One batched pass embeds the fresh whole designs and every chunk
    # whose vectors cannot be reused from the previous build.
    fresh_chunk_slots = []
    chunk_graphs = []
    for i, result in enumerate(ok):
        subs = per_ok_chunks[i]
        if subs and len(previous_chunks.get(result.key, ())) != len(subs):
            fresh_chunk_slots.append((i, len(subs)))
            chunk_graphs.extend(sub for sub, _ in subs)
    embed_graphs = [r.graph for r in fresh] + chunk_graphs
    unit = unit_rows_f32(
        service.embed_graphs(embed_graphs)
        if embed_graphs else np.empty((0, model.encoder.hidden)))
    fresh_rows = {r.key: unit[i] for i, r in enumerate(fresh)}
    cursor = len(fresh)
    chunk_vectors = {}  # ok-ordinal -> (n_chunks, hidden) unit rows
    for i, count in fresh_chunk_slots:
        chunk_vectors[i] = unit[cursor:cursor + count]
        cursor += count
    for i, result in enumerate(ok):
        if per_ok_chunks[i] and i not in chunk_vectors:
            chunk_vectors[i] = np.stack(previous_chunks[result.key])
    embed_seconds = time.perf_counter() - embed_start

    names = _unique_names(results)
    ok_names = [name for result, name in zip(results, names) if result.ok]
    # Row layout: whole-design rows first (ok order), then chunk rows
    # grouped by design.  The rows table mirrors it spec for spec.
    design_rows = [previous[r.key] if r.key in previous
                   else fresh_rows[r.key] for r in ok]
    row_specs = [{"kind": "design", "name": name} for name in ok_names]
    chunk_rows = []
    for i in range(len(ok)):
        for j, (_, region) in enumerate(per_ok_chunks[i]):
            row_specs.append({"kind": "chunk", "parent": ok_names[i],
                              "region": region})
            chunk_rows.append(chunk_vectors[i][j])
    unit_matrix = (np.stack(design_rows + chunk_rows)
                   if design_rows or chunk_rows
                   else np.empty((0, model.encoder.hidden),
                                 dtype=np.float32))

    report = {
        "files": len(results),
        "embedded": len(ok),
        "embedded_fresh": len(fresh),
        "embeddings_reused": len(ok) - len(fresh),
        "failures": len(results) - len(ok),
        "chunk_rows": len(chunk_rows),
        "cache": cache.stats.as_dict() if cache else None,
        "extract_seconds": extract_seconds,
        "embed_seconds": embed_seconds,
        "jobs": extractor.last_jobs,
    }
    specs = ([write_shard(root, next_shard_ordinal(root), unit_matrix)]
             if len(unit_matrix) else [])
    meta = {
        "version": FORMAT_VERSION,
        "model_hash": service.fingerprint,
        "options": {
            "top": top,
            "level": frontend.level,
            "do_trim": getattr(frontend, "do_trim", True),
            "schema": frontend.schema_fingerprint(),
            "use_cache": use_cache,
        },
        "store": {
            "dtype": "float32",
            "hidden": int(model.encoder.hidden),
            "shards": specs,
        },
        "entries": _result_entries(results, names),
        "rows": row_specs,
        "chunks": chunk_opts.as_dict() if chunk_opts else None,
        "build": report,
    }
    _maybe_fit_ivf(root, unit_matrix, meta)
    save_model(model, root / MODEL_NAME)
    # Structural signatures ride along with every multi-granularity
    # build (the graphs are already in hand; wl_colors is one pass per
    # graph).  Chunk-less indexes get no signature file so their
    # serving contract stays bit-identical to v3 — the structural
    # channel exists to fix what chunk granularity breaks.
    if chunk_rows:
        write_signatures(root, {name: wl_colors(result.graph)
                                for result, name in zip(ok, ok_names)})
    else:
        (root / SIG_NAME).unlink(missing_ok=True)
    # meta.json is written before any stale file is removed (and after
    # everything it references exists): its presence marks a complete
    # index, and load() cross-checks it against the shard files.
    _write_meta(root, meta)
    _clean_stale_files(root, meta)
    return FingerprintIndex.load(root), report


def add_to_index(root, paths, jobs=None, batch_size=64):
    """Incrementally add files to an existing index.

    Appends exactly one new shard plus meta entries: existing shards,
    the model, and the quantizer's centroids are left untouched, and
    files whose content key is already indexed reuse the stored vector
    instead of re-embedding (the incremental-construction idea — grow
    the index in place instead of rebuilding).

    Returns:
        (index, report) — the reloaded index and a build-style dict with
        ``"mode": "add"``.
    """
    root = Path(root)
    index = FingerprintIndex.load(root)
    paths = [str(p) for p in paths]
    if not paths:
        raise IndexStoreError("no input files to add")
    model = index.model()
    frontend = index.frontend()

    start = time.perf_counter()
    cache = DFGCache(root / CACHE_DIR) if index.use_cache else None
    extractor = CorpusExtractor(cache=cache, jobs=jobs, frontend=frontend)
    results = extractor.extract_paths(paths, top=index.top)
    extract_seconds = time.perf_counter() - start

    ok = [r for r in results if r.ok]
    chunk_opts = index.chunk_config()
    per_ok_chunks = [extract_chunks(r.graph, chunk_opts) if chunk_opts
                     else [] for r in ok]
    embed_start = time.perf_counter()
    fresh = [r for r in ok if index.lookup_key(r.key) is None]
    chunk_graphs = [sub for subs in per_ok_chunks for sub, _ in subs]
    embed_graphs = [r.graph for r in fresh] + chunk_graphs
    if embed_graphs:
        service = index.service_for(model, batch_size=batch_size)
        unit = unit_rows_f32(service.embed_graphs(embed_graphs))
    else:
        unit = np.empty((0, index.shards.hidden), dtype=np.float32)
    fresh_rows = {r.key: unit[i] for i, r in enumerate(fresh)}
    chunk_unit = unit[len(fresh):]
    design_rows = [fresh_rows[r.key] if r.key in fresh_rows
                   else index.lookup_key(r.key) for r in ok]
    new_unit = (np.concatenate(
        [np.stack(design_rows) if design_rows
         else np.empty((0, index.shards.hidden), dtype=np.float32),
         chunk_unit])
        if design_rows or len(chunk_unit) else
        np.empty((0, index.shards.hidden), dtype=np.float32))
    embed_seconds = time.perf_counter() - embed_start

    meta = index.meta
    if len(new_unit):
        ordinal = next_shard_ordinal(root, meta["store"]["shards"])
        meta["store"]["shards"].append(write_shard(root, ordinal,
                                                   new_unit))
        total = index.shards.rows + len(new_unit)
        fitted = ((meta.get("ivf") or {}).get("fitted_rows", 0)
                  if index.ivf is not None else 0)
        refit_due = (total - fitted
                     > max(IVF_MIN_ROWS, int(REFIT_GROWTH * fitted)))
        if index.ivf is not None and not refit_due:
            # Grow the quantizer in place: new rows join their nearest
            # existing centroid; no re-clustering, no reassignment.
            index.ivf.add(new_unit)
            name = _next_ivf_name(root)
            index.ivf.save(root / name)
            meta["ivf"]["file"] = name
        elif total >= IVF_MIN_ROWS:
            # Covers the first crossing of the size threshold, a
            # quantizer load() dropped as stale, and assign-only growth
            # crossing REFIT_GROWTH since the last k-means (centroids
            # fitted on a fraction of the corpus probe poorly against
            # the rest) — refit from everything.
            ivf = IVFIndex.fit(
                np.concatenate([index.matrix, new_unit], axis=0))
            name = _next_ivf_name(root)
            ivf.save(root / name)
            meta["ivf"] = {"clusters": ivf.n_clusters, "file": name,
                           "fitted_rows": total}

    existing_names = [e["name"] for e in meta["entries"]]
    names = _unique_names(results, taken=existing_names)
    ok_names = [name for result, name in zip(results, names) if result.ok]
    meta["entries"].extend(_result_entries(results, names))
    # The appended shard mirrors the build layout batch-locally: the
    # batch's design rows first, then its chunk rows grouped by design.
    rows = meta.setdefault("rows", [])
    rows.extend({"kind": "design", "name": name} for name in ok_names)
    for i in range(len(ok)):
        rows.extend({"kind": "chunk", "parent": ok_names[i],
                     "region": region} for _, region in per_ok_chunks[i])
    report = {
        "mode": "add",
        "files": len(results),
        "embedded": len(ok),
        "embedded_fresh": len(fresh),
        "embeddings_reused": len(ok) - len(fresh),
        "failures": len(results) - len(ok),
        "chunk_rows": len(chunk_graphs),
        "cache": cache.stats.as_dict() if cache else None,
        "extract_seconds": extract_seconds,
        "embed_seconds": embed_seconds,
        "jobs": extractor.last_jobs,
    }
    meta["build"] = report
    # Extend the signature file for the appended designs.  An index
    # without one (migrated from v3, never re-extracted) stays without:
    # a partially-signed corpus could never serve the structural
    # channel anyway.
    stored = load_signatures(root)
    if stored is not None:
        colors, radius = stored
        colors.update({name: wl_colors(result.graph, radius)
                       for result, name in zip(ok, ok_names)})
        write_signatures(root, colors, radius=radius)
    _write_meta(root, meta)
    _clean_stale_files(root, meta)
    return FingerprintIndex.load(root), report


def _design_row_specs(meta):
    """v4 row table for a chunk-less index: one design row per ok entry,
    in entry order (exactly how v2/v3 laid out their shard rows)."""
    return [{"kind": "design", "name": entry["name"]}
            for entry in meta["entries"] if entry["status"] == "ok"]


def migrate_index(root):
    """Convert a v2 or v3 index to v4 in place, without re-embedding.

    - **v3 -> v4** rewrites ``meta.json`` only: the shard rows already
      hold one whole-design embedding per ok entry, so the migration
      synthesizes the matching ``rows`` table (no chunk rows — rebuild
      the index to also store subgraph chunks) and stamps the version.
      Shards, quantizer, and model are untouched, and queries return
      exactly the scores the v3 index returned.
    - **v2 -> v4** additionally converts the compressed float64
      ``embeddings.npz`` store: unit-normalizes it once, writes the rows
      as a float32 shard (plus an IVF quantizer when the corpus is
      large enough), and removes the legacy store.

    Returns:
        The migrated, loaded :class:`FingerprintIndex`.
    """
    root = Path(root)
    meta = _read_meta(root)
    version = meta.get("version")
    if version == FORMAT_VERSION:
        return FingerprintIndex.load(root)
    if version == 3:
        meta["version"] = FORMAT_VERSION
        meta["rows"] = _design_row_specs(meta)
        meta["chunks"] = None
        _write_meta(root, meta)
        return FingerprintIndex.load(root)
    if version != 2:
        raise IndexStoreError(
            f"cannot migrate index version {version!r} "
            f"(only v2 and v3); rebuild the index")
    try:
        with np.load(root / LEGACY_EMBEDDINGS_NAME,
                     allow_pickle=False) as data:
            matrix = data["matrix"]
            keys = [str(k) for k in data["keys"]]
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise IndexStoreError(f"corrupt embedding store: {exc}") from exc
    ok_keys = [e["key"] for e in meta["entries"] if e["status"] == "ok"]
    if keys != ok_keys or matrix.shape[0] != len(ok_keys):
        raise IndexStoreError(
            "embedding store does not match index metadata "
            "(partial write? rebuild the index)")
    unit_matrix = unit_rows_f32(matrix)
    hidden = int(matrix.shape[1]) if matrix.ndim == 2 else 0
    meta["version"] = FORMAT_VERSION
    meta["options"].setdefault("use_cache", True)
    meta["store"] = {
        "dtype": "float32",
        "hidden": hidden,
        "shards": ([write_shard(root, next_shard_ordinal(root),
                                unit_matrix)]
                   if len(unit_matrix) else []),
    }
    meta["rows"] = _design_row_specs(meta)
    meta["chunks"] = None
    _maybe_fit_ivf(root, unit_matrix, meta)
    # v4 meta lands atomically first; only then is the legacy store
    # removed, so a crash mid-migration never strands a half-converted
    # index (either version's meta always matches its files).
    _write_meta(root, meta)
    _clean_stale_files(root, meta)
    return FingerprintIndex.load(root)


#: Back-compat alias: the v2 migration entry point now handles v3 too.
migrate_v2 = migrate_index
