"""Memory-mapped embedding shards — the index format v3 vector store.

v2 kept the whole corpus in one compressed ``embeddings.npz``: every open
decompressed the full ``float64`` matrix and re-normalized each row.  v3
stores **unit-normalized float32** rows as raw little-endian shard files
under ``<root>/shards/``, so opening an index is a handful of ``stat``
calls plus ``mmap`` — no decompression, no copy, no re-normalization —
and the OS page cache shares the hot rows across processes.

Shards are append-only: a build writes ``shard-00000.f32`` and each
incremental ``index add`` appends ``shard-00001.f32``, ``shard-00002.f32``
... without touching earlier files.  Writes go through a temp file plus
atomic rename, and ``meta.json`` (written last) records each shard's row
count and content digest.  :meth:`ShardStore.open` validates file sizes
against the recorded row counts, so a truncated or partial shard is
detected at open time instead of producing garbage scores; byte-level
corruption that preserves the size is caught by :meth:`ShardStore.verify`
(which hashes every shard and is therefore not part of the open path).
"""

import hashlib
import os
from pathlib import Path

import numpy as np

from repro.errors import IndexStoreError

SHARD_DIR = "shards"
SHARD_DTYPE = np.dtype("<f4")
_SUFFIX = ".f32"


def shard_filename(ordinal):
    """Canonical shard file name for a build/add ordinal."""
    return f"shard-{ordinal:05d}{_SUFFIX}"


def next_shard_ordinal(root, specs=()):
    """First ordinal past everything on disk or referenced by ``specs``.

    Shard files are never overwritten in place: a rebuild writes its
    matrix under a fresh name and the old files are cleaned only after
    the new ``meta.json`` lands, so a crash mid-rebuild leaves the
    previous meta pointing at exactly the bytes it described.  Orphans
    from crashed writes merely bump the ordinal until cleanup.
    """
    taken = -1
    shard_dir = Path(root) / SHARD_DIR
    if shard_dir.is_dir():
        for path in shard_dir.glob(f"shard-*{_SUFFIX}"):
            stem = path.name[len("shard-"):-len(_SUFFIX)]
            if stem.isdigit():
                taken = max(taken, int(stem))
    for spec in specs:
        stem = spec["file"][len("shard-"):-len(_SUFFIX)]
        if stem.isdigit():
            taken = max(taken, int(stem))
    return taken + 1


def assign_partitions(specs, n):
    """Split shard files into ``n`` balanced disjoint partitions.

    Greedy longest-processing-time assignment over the shard row
    counts: shards are taken largest first and each goes to the
    currently lightest partition, so partitions stay within one shard
    of balanced without splitting any file (scatter-gather serving
    partitions by *whole* shards — the per-shard gemm is what makes
    partition scores bit-identical to single-process scores).
    Deterministic: ties break toward the lower shard ordinal and the
    lower partition index.  With more partitions than shards the
    surplus partitions come back empty.

    Args:
        specs: the ``meta.json`` shard spec list (``rows`` per shard,
            in ordinal order).
        n: partition count (>= 1).

    Returns:
        ``n`` ascending lists of shard ordinals, disjoint and jointly
        covering ``range(len(specs))``.
    """
    n = int(n)
    if n < 1:
        raise IndexStoreError(f"partition count must be >= 1, got {n}")
    sized = sorted(enumerate(int(s["rows"]) for s in specs),
                   key=lambda pair: (-pair[1], pair[0]))
    parts = [[] for _ in range(n)]
    loads = [0] * n
    for ordinal, rows in sized:
        lightest = min(range(n), key=lambda i: (loads[i], i))
        parts[lightest].append(ordinal)
        loads[lightest] += rows
    return [sorted(part) for part in parts]


def unit_rows_f32(matrix, eps=1e-12):
    """Unit-normalized ``float32`` copy of an embedding matrix.

    Normalization happens in the input precision (float64 for fresh
    embeddings) *before* the narrowing cast, so stored rows are as close
    to unit length as float32 allows.
    """
    matrix = np.asarray(matrix)
    if matrix.size == 0:
        return np.empty(matrix.shape, dtype=SHARD_DTYPE)
    wide = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(wide, axis=1, keepdims=True)
    return np.ascontiguousarray(wide / np.maximum(norms, eps),
                                dtype=SHARD_DTYPE)


def write_shard(root, ordinal, unit_matrix, fsync=False):
    """Atomically write one shard; returns its ``meta.json`` spec dict.

    ``unit_matrix`` must already be unit-normalized float32 (see
    :func:`unit_rows_f32`); this function is a plain byte writer so the
    store never double-normalizes reused rows.  ``fsync=True`` forces the
    bytes to stable storage before the rename — the streaming ingest
    checkpoint protocol depends on a checkpointed shard surviving a
    crash, while one-shot builds (whose meta.json lands last anyway)
    skip the sync.
    """
    unit_matrix = np.ascontiguousarray(unit_matrix, dtype=SHARD_DTYPE)
    if unit_matrix.ndim != 2 or not len(unit_matrix):
        raise IndexStoreError("refusing to write an empty embedding shard")
    shard_dir = Path(root) / SHARD_DIR
    shard_dir.mkdir(parents=True, exist_ok=True)
    path = shard_dir / shard_filename(ordinal)
    blob = unit_matrix.tobytes()
    tmp = path.with_suffix(".tmp")
    with open(tmp, "wb") as handle:
        handle.write(blob)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())
    tmp.replace(path)
    return {
        "file": path.name,
        "rows": int(unit_matrix.shape[0]),
        "sha256": hashlib.sha256(blob).hexdigest(),
    }


class ShardStore:
    """Read side of the v3 vector store: validated, lazily-mapped shards.

    Args:
        root: index root directory (shards live under ``root/shards/``).
        hidden: embedding width every shard must match.
        specs: the ``meta.json`` shard spec list (``file``/``rows``/
            ``sha256`` per shard, in row order).
    """

    def __init__(self, root, hidden, specs):
        self.root = Path(root)
        self.hidden = int(hidden)
        self.specs = list(specs)
        self._blocks = None
        self._offsets = np.concatenate(
            ([0], np.cumsum([int(s["rows"]) for s in self.specs])),
        ).astype(np.int64)

    @property
    def rows(self):
        """Total stored rows across all shards."""
        return int(self._offsets[-1])

    def shard_path(self, spec):
        return self.root / SHARD_DIR / spec["file"]

    def open(self):
        """Map every shard read-only, validating sizes; returns ``self``.

        Raises:
            IndexStoreError: on a missing or size-mismatched (truncated /
                partially written) shard file.
        """
        if self._blocks is not None:
            return self
        blocks = []
        for spec in self.specs:
            path = self.shard_path(spec)
            rows = int(spec["rows"])
            expected = rows * self.hidden * SHARD_DTYPE.itemsize
            try:
                actual = path.stat().st_size
            except OSError as exc:
                raise IndexStoreError(
                    f"missing embedding shard {spec['file']} "
                    f"(partial write or deleted file? rebuild the index "
                    f"or restore the shard)") from exc
            if actual != expected:
                raise IndexStoreError(
                    f"embedding shard {spec['file']} is {actual} bytes, "
                    f"expected {expected} ({rows} rows x {self.hidden}): "
                    f"truncated or partial write — rebuild the index")
            blocks.append(np.memmap(path, dtype=SHARD_DTYPE, mode="r",
                                    shape=(rows, self.hidden)))
        self._blocks = blocks
        return self

    def blocks(self):
        """Per-shard ``(rows, hidden)`` float32 memmaps, in row order."""
        self.open()
        return self._blocks

    def row(self, row):
        """One stored row by global index (crosses shard boundaries)."""
        if not 0 <= row < self.rows:
            raise IndexStoreError(f"embedding row {row} out of range "
                                  f"(store has {self.rows})")
        shard = int(np.searchsorted(self._offsets, row, side="right")) - 1
        return self.blocks()[shard][row - int(self._offsets[shard])]

    def matrix(self):
        """The full matrix, materialized in RAM (copies every shard)."""
        blocks = self.blocks()
        if not blocks:
            return np.empty((0, self.hidden), dtype=SHARD_DTYPE)
        if len(blocks) == 1:
            return np.array(blocks[0])
        return np.concatenate([np.asarray(b) for b in blocks], axis=0)

    def verify(self):
        """Re-hash every shard; returns the list of corrupt file names.

        Catches byte corruption that preserves the file size (which the
        open-time size check cannot see).  Reads all data — keep it off
        the serving path.
        """
        bad = []
        for spec in self.specs:
            digest = hashlib.sha256(
                self.shard_path(spec).read_bytes()).hexdigest()
            if digest != spec.get("sha256", digest):
                bad.append(spec["file"])
        return bad
