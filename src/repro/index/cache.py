"""Content-addressed on-disk cache for extracted graphs.

Entries are keyed by SHA-256 over the *preprocessed* Verilog source plus
every pipeline option that affects extraction (level, trim flag, top
module) plus the frontend's **schema fingerprint** (IR format version and
featurizer vocabulary).  Identical sources therefore share one entry
regardless of file name or location, and any change to the source, the
options, the on-disk format, or the feature schema changes the key instead
of silently returning a stale graph — a ``FEATURE_DIM``/vocabulary change
can never resurrect fingerprints computed under the old schema.

Layout mirrors git's object store: ``<root>/<key[:2]>/<key[2:]>.dfg`` keeps
directories small on large corpora.  Blobs are the compressed-JSON payloads
of :mod:`repro.ir.serialize` (RTL and netlist graphs share the codec); a
corrupt blob (truncated write, disk fault, stale format) is treated as a
miss, counted in the stats, and deleted so the slot heals on the next
store.
"""

import hashlib
import os
from pathlib import Path

from repro.errors import ReproError
from repro.ir import serialize as ir_serialize


class CacheStats:
    """Counters for one cache lifetime (reset with a new instance)."""

    __slots__ = ("hits", "misses", "stores", "corrupt",
                 "hit_bytes", "store_bytes")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.hit_bytes = 0
        self.store_bytes = 0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"stores={self.stores}, corrupt={self.corrupt})")


def content_key(cleaned_text, options_fingerprint, top=None, schema=""):
    """SHA-256 hex key for preprocessed source + extraction options.

    Args:
        cleaned_text: preprocessed Verilog source.
        options_fingerprint: frontend options string (level, trim, ...).
        top: top-module override, part of the key.
        schema: the frontend's schema fingerprint (IR format version +
            featurizer vocabulary digest); callers that do not care about
            feature-schema invalidation may leave it empty.
    """
    digest = hashlib.sha256()
    digest.update(f"gir\0schema={schema}\0".encode("utf-8"))
    digest.update(f"{options_fingerprint}\0top={top or ''}\0"
                  .encode("utf-8"))
    digest.update(cleaned_text.encode("utf-8"))
    return digest.hexdigest()


class DFGCache:
    """Persistent graph store under ``root``; safe to share across runs.

    Blobs are encoded with :mod:`repro.ir.serialize`, which handles every
    GraphIR level (including DFGs, which serialize as RTL-level IR).
    """

    def __init__(self, root):
        self.root = Path(root)
        self.stats = CacheStats()

    def blob_path(self, key):
        return self.root / key[:2] / f"{key[2:]}.dfg"

    def load(self, key):
        """The cached graph for ``key``, or ``None`` on a miss.

        Corrupt entries are deleted and reported as misses.
        """
        path = self.blob_path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            graph = ir_serialize.loads(blob)
        except ReproError:
            self.stats.corrupt += 1
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.stats.hits += 1
        self.stats.hit_bytes += len(blob)
        return graph

    def store(self, key, graph):
        """Write ``graph`` under ``key`` (atomically via rename).

        The temp name carries the writer's pid: ingest workers write to
        the cache concurrently, and two processes storing the same key
        must not interleave bytes in a shared temp file (last rename
        wins; both wrote identical content anyway).
        """
        path = self.blob_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = ir_serialize.dumps(graph)
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_bytes(blob)
        tmp.replace(path)
        self.stats.stores += 1
        self.stats.store_bytes += len(blob)

    def entry_count(self):
        """Number of blobs on disk (walks the store)."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.dfg"))

    def disk_bytes(self):
        """Total size of all blobs on disk."""
        if not self.root.is_dir():
            return 0
        return sum(p.stat().st_size for p in self.root.glob("*/*.dfg"))
