"""Corpus-scale fingerprint index.

Treats DFG extraction as a cacheable, parallelizable build step and
embedding as a batched query service: ``build_index`` fans extraction out
over worker processes through a content-addressed DFG cache, embeds the
corpus in packed batches, and persists an index that answers top-k
nearest-design queries with one vectorized cosine pass.
"""

from repro.index.cache import CacheStats, DFGCache, content_key
from repro.index.extractor import (
    CorpusExtractor,
    ExtractionResult,
    default_jobs,
)
from repro.index.service import EmbeddingService, model_fingerprint
from repro.index.store import FingerprintIndex, QueryHit, build_index

__all__ = [
    "CacheStats", "DFGCache", "content_key",
    "CorpusExtractor", "ExtractionResult", "default_jobs",
    "EmbeddingService", "model_fingerprint",
    "FingerprintIndex", "QueryHit", "build_index",
]
