"""Corpus-scale fingerprint index.

Treats DFG extraction as a cacheable, parallelizable build step and
embedding as a batched query service: ``build_index`` fans extraction out
over worker processes through a content-addressed DFG cache, embeds the
corpus in packed batches, and persists memory-mapped float32 shards that
open without decompressing or copying.  ``add_to_index`` grows the corpus
in place (one appended shard, no re-embedding); the
:class:`~repro.index.engine.QueryEngine` answers whole batches of top-k
nearest-design queries per BLAS pass, optionally pre-filtered by an IVF
coarse quantizer (:mod:`repro.index.ann`) that probes only the nearest
clusters and re-ranks candidates exactly.
"""

from repro.index.ann import IVFIndex
from repro.index.cache import CacheStats, DFGCache, content_key
from repro.index.chunks import ChunkConfig, extract_chunks
from repro.index.engine import QueryEngine, QueryHit
from repro.index.extractor import (
    CorpusExtractor,
    ExtractionResult,
    default_jobs,
)
from repro.index.ingest import IngestConfig, ingest_corpus, walk_sources
from repro.index.service import EmbeddingService, model_fingerprint
from repro.index.shards import ShardStore
from repro.index.store import (
    FingerprintIndex,
    add_to_index,
    build_index,
    migrate_index,
    migrate_v2,
)
from repro.index.wlsig import SignatureScorer, wl_colors

__all__ = [
    "CacheStats", "DFGCache", "content_key",
    "ChunkConfig", "extract_chunks",
    "CorpusExtractor", "ExtractionResult", "default_jobs",
    "EmbeddingService", "model_fingerprint",
    "FingerprintIndex", "IngestConfig", "QueryEngine", "QueryHit",
    "IVFIndex", "ShardStore", "SignatureScorer", "add_to_index",
    "build_index", "ingest_corpus", "migrate_index", "migrate_v2",
    "walk_sources", "wl_colors",
]
