"""Streaming multiprocess corpus ingest with checkpointed resume.

``build_index`` is a one-shot pass: it extracts every graph, holds every
embedding in memory, and writes nothing durable until the very end.
That is the right shape for a few hundred designs and the wrong shape
for a registry of 10⁵–10⁶ — peak memory scales with corpus × chunking
factor and a crash at 99 % loses everything.  This module is the
production ingest path:

- a **work queue** of design sources feeds N worker processes, each
  running the full extract → chunk → embed pipeline (the model is
  shipped to the workers once, at pool start) and returning only the
  unit-normalized float32 rows plus a small metadata record — graphs
  never accumulate in the parent, so peak memory stays flat regardless
  of corpus size;
- results stream back **in input order** (deterministic layout: two
  runs over the same corpus produce identical indexes) and are flushed
  to the append-only v4 shard files in bounded-size batches;
- a failing design is **recorded and skipped**, never fatal: its error
  entry lands in the checkpoint and the final index like any other;
- every flush durably lands (``fsync``) one shard, one WL-signature
  sidecar line, and one atomically-replaced **checkpoint**, in that
  order — a kill at any instant leaves a checkpoint that refers only to
  bytes already on disk, and ``ingest_corpus`` resumes exactly where it
  stopped, producing an index byte-equivalent to an uninterrupted run;
- finalize merges the sidecar into ``signatures.json``, compacts the
  per-flush mini-shards into one, fits (or grows) the IVF quantizer —
  re-fitting from scratch in a background thread when the rows added
  since the last k-means fit cross :data:`REFIT_GROWTH` — and writes
  ``meta.json`` last, so the index is never observable half-built.

Crash-ordering contract (what resume relies on)::

    shard-NNNNN.f32   (fsync, atomic rename)     <- rows land first
    ingest.sigs.jsonl (append + fsync)           <- signature sidecar
    ingest.json       (fsync, atomic rename)     <- checkpoint LAST

A checkpoint therefore never references a shard that is missing or
short; an orphan shard from a crash between steps is re-done on resume
and cleaned at finalize.  Appending to an existing index never touches
its files — the old ``meta.json`` stays valid (and servable) until the
new one atomically replaces it.
"""

import hashlib
import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.persist import load_model, save_model
from repro.errors import IndexStoreError, ModelError
from repro.index.ann import IVFIndex, MIN_ROWS as IVF_MIN_ROWS, REFIT_GROWTH
from repro.index.cache import DFGCache
from repro.index.chunks import ChunkConfig, extract_chunks
from repro.index.service import EmbeddingService
from repro.index.shards import (
    SHARD_DTYPE,
    ShardStore,
    next_shard_ordinal,
    unit_rows_f32,
    write_shard,
)
from repro.index.store import (
    CACHE_DIR,
    FORMAT_VERSION,
    MODEL_NAME,
    FingerprintIndex,
    _clean_stale_files,
    _next_ivf_name,
    _read_meta,
    _write_meta,
)
from repro.index.wlsig import (
    SIG_NAME,
    SIG_RADIUS,
    load_signatures,
    wl_colors,
    write_signatures,
)
from repro.ir.frontends import get_frontend

#: Durable ingest checkpoint (atomically replaced per flush); its
#: presence marks an ingest in progress — ``resume=True`` picks it up.
CHECKPOINT_NAME = "ingest.json"
#: Append-only WL-signature sidecar (one JSON line per flush).  Merged
#: into ``signatures.json`` at finalize and removed with the checkpoint.
SIG_SIDECAR_NAME = "ingest.sigs.jsonl"
#: Bump when the checkpoint schema changes shape: an old checkpoint is
#: refused (restart with ``fresh=True``) rather than misread.
CHECKPOINT_VERSION = 1
#: Finalize compacts this ingest's per-flush mini-shards into a single
#: shard when it wrote at least this many — hundreds of 2k-row blocks
#: would otherwise tax every future query's block loop.
COMPACT_MIN_SHARDS = 8


def walk_sources(sources):
    """Expand files and directory trees into a sorted ``.v`` file list.

    Directories are walked recursively (this is how an **external**
    Verilog tree is ingested — point it at the root).  Duplicates are
    dropped; order is deterministic (sorted within each directory,
    sources in argument order).
    """
    paths = []
    for source in sources:
        path = Path(source)
        if path.is_dir():
            paths.extend(sorted(path.rglob("*.v")))
        else:
            paths.append(path)
    seen = set()
    unique = []
    for path in paths:
        if str(path) not in seen:
            seen.add(str(path))
            unique.append(path)
    return unique


@dataclass
class IngestConfig:
    """Tunables for :func:`ingest_corpus`.

    Attributes:
        jobs: worker processes (``None`` auto-sizes to the machine,
            ``1`` forces the serial in-process path).
        flush_rows: embedding rows buffered in the parent before a
            shard flush + checkpoint; bounds peak parent memory
            (``flush_rows`` × hidden × 4 bytes of row data).
        batch_size: graphs per packed embedding forward pass inside
            each worker.
        level: extraction level for a fresh index (defaults to the
            model's level); appends always use the index's own level.
        top: top-module override applied to every file.
        use_cache: probe/populate the content-addressed graph cache.
        chunks: also store one row per subgraph chunk (fresh indexes
            only; appends follow the index's stored chunk config).
        chunk_config: :class:`~repro.index.chunks.ChunkConfig` override.
        progress: callable invoked with a stats dict (``done``,
            ``total``, ``failed``, ``rows``, ``rows_per_sec``,
            ``designs_per_sec``, ``eta_seconds``, ``elapsed_seconds``)
            every ``progress_every`` seconds and once at the end.
        progress_every: minimum seconds between progress callbacks.
        stop_after: checkpoint and pause after this many designs are
            processed *in this session* (``ingest_corpus`` then returns
            ``(None, report)`` with ``state: "paused"``); ``None`` runs
            to completion.  The pause/resume seam for bounded ingest
            windows — and for tests that prove resume correctness.
    """

    jobs: int = None
    flush_rows: int = 2048
    batch_size: int = 64
    level: str = None
    top: str = None
    use_cache: bool = True
    chunks: bool = True
    chunk_config: object = None
    progress: object = field(default=None, repr=False)
    progress_every: float = 2.0
    stop_after: int = None


# -- worker side --------------------------------------------------------------
#: Per-worker-process state, built once by the pool initializer so the
#: model is unpickled and the frontend constructed once per worker, not
#: once per file.
_WORKER = {}


def _init_ingest_worker(model, level, options, top, chunk_spec,
                        cache_dir, batch_size):
    frontend = get_frontend(level, **options)
    _WORKER["frontend"] = frontend
    _WORKER["service"] = EmbeddingService(model, batch_size=batch_size)
    _WORKER["top"] = top
    _WORKER["chunks"] = (ChunkConfig.from_dict(chunk_spec)
                         if chunk_spec else None)
    _WORKER["cache"] = DFGCache(cache_dir) if cache_dir else None
    _WORKER["want_colors"] = chunk_spec is not None


def _describe(exc):
    return f"{type(exc).__name__}: {exc}"


def _ingest_task(task):
    """Worker: full extract → chunk → embed pipeline for one file.

    Returns ``(seq, payload)`` where the payload is a small picklable
    dict — embedding rows as raw float32 bytes, never graphs — so the
    parent's memory footprint per in-flight result is a few kilobytes.
    Any exception is captured as an error payload: one bad design can
    never take down the run.
    """
    seq, path = task
    payload = {"path": str(path),
               "stem": os.path.splitext(os.path.basename(str(path)))[0],
               "key": None}
    frontend = _WORKER["frontend"]
    try:
        with open(path) as handle:
            text = handle.read()
        cleaned = frontend.preprocess_text(text)
        payload["key"] = frontend.content_key(cleaned, top=_WORKER["top"])
        cache = _WORKER["cache"]
        graph = cache.load(payload["key"]) if cache is not None else None
        payload["cached"] = graph is not None
        if graph is None:
            graph = frontend.extract_preprocessed(cleaned,
                                                  top=_WORKER["top"])
            if cache is not None:
                cache.store(payload["key"], graph)
        chunk_opts = _WORKER["chunks"]
        subs = extract_chunks(graph, chunk_opts) if chunk_opts else []
        unit = unit_rows_f32(_WORKER["service"].embed_graphs(
            [graph] + [sub for sub, _ in subs]))
        payload.update({
            "design": graph.name,
            "nodes": len(graph),
            "edges": graph.num_edges,
            "rows": unit.tobytes(),
            "n_rows": int(unit.shape[0]),
            "regions": [region for _, region in subs],
        })
        if _WORKER["want_colors"]:
            payload["colors"] = {format(color, "x"): int(count)
                                 for color, count
                                 in sorted(wl_colors(graph).items())}
        return seq, payload
    except Exception as exc:  # noqa: BLE001 - per-item isolation is the point
        payload["error"] = _describe(exc)
        return seq, payload


# -- durable writes -----------------------------------------------------------
def _fsync_dir(path):
    """Best-effort directory fsync (required for rename durability on
    POSIX; silently skipped where directories cannot be opened)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _write_json_durable(path, payload):
    """fsync'd write + atomic rename: the file is either the old
    version or the complete new one, never a prefix."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)
    _fsync_dir(path.parent)


def _append_sidecar(path, colors_by_name):
    """Append one durable JSONL line of ``{name: {hex: count}}``."""
    with open(path, "a") as handle:
        handle.write(json.dumps(colors_by_name, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def _read_sidecar(path):
    """Merged ``{name: Counter-dict}`` from the sidecar (later lines
    win — a re-done flush after a crash simply overwrites its names)."""
    from collections import Counter

    colors = {}
    if not Path(path).is_file():
        return colors
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                batch = json.loads(line)
            except json.JSONDecodeError:
                # A torn final line (crash mid-append): every complete
                # line before it is valid, and the items it described
                # are not in the checkpoint, so they will be re-done.
                continue
            colors.update(batch)
    return {name: Counter({int(color, 16): int(count)
                           for color, count in mapping.items()})
            for name, mapping in colors.items()}


def _input_digest(paths):
    digest = hashlib.sha256()
    for path in paths:
        digest.update(str(path).encode("utf-8") + b"\n")
    return digest.hexdigest()


# -- the ingest driver --------------------------------------------------------
class _IngestState:
    """Mutable run state: checkpointed fields plus session counters."""

    def __init__(self, root, paths, checkpoint):
        self.root = Path(root)
        self.paths = paths
        self.mode = checkpoint["mode"]
        self.options = checkpoint["options"]
        self.chunk_spec = checkpoint["chunks"]
        self.hidden = checkpoint["hidden"]
        self.model_hash = checkpoint["model_hash"]
        self.input_digest = checkpoint["input_digest"]
        self.base = checkpoint["base"]
        self.completed = checkpoint["completed"]
        self.entries = checkpoint["entries"]
        self.rows = checkpoint["rows"]
        self.shards = checkpoint["shards"]
        self.taken = set(checkpoint["taken_base_names"])
        self.taken.update(e["name"] for e in self.entries)
        self.flushes = 0

    @property
    def new_rows(self):
        return sum(int(spec["rows"]) for spec in self.shards)

    def checkpoint_payload(self):
        return {
            "version": CHECKPOINT_VERSION,
            "mode": self.mode,
            "model_hash": self.model_hash,
            "options": self.options,
            "chunks": self.chunk_spec,
            "hidden": self.hidden,
            "input_digest": self.input_digest,
            "base": self.base,
            "total": len(self.paths),
            "completed": self.completed,
            "entries": self.entries,
            "rows": self.rows,
            "shards": self.shards,
            "taken_base_names": sorted(
                self.taken - {e["name"] for e in self.entries}),
        }

    def write_checkpoint(self):
        _write_json_durable(self.root / CHECKPOINT_NAME,
                            self.checkpoint_payload())
        self.flushes += 1

    def unique_name(self, stem):
        candidate, suffix = stem, 1
        while candidate in self.taken:
            suffix += 1
            candidate = f"{stem}#{suffix}"
        self.taken.add(candidate)
        return candidate


def _resume_error(root, why):
    return IndexStoreError(
        f"cannot resume the ingest checkpoint at {root}: {why}; "
        f"restart from scratch with fresh=True "
        f"('gnn4ip index ingest --fresh')")


def _load_checkpoint(root, paths, model_hash):
    """Validated checkpoint dict for a resume, or None when absent."""
    path = Path(root) / CHECKPOINT_NAME
    if not path.is_file():
        return None
    try:
        checkpoint = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise _resume_error(root, f"checkpoint file is corrupt ({exc})")
    if checkpoint.get("version") != CHECKPOINT_VERSION:
        raise _resume_error(
            root, f"checkpoint version {checkpoint.get('version')!r} is "
                  f"not supported (expected {CHECKPOINT_VERSION})")
    if checkpoint["input_digest"] != _input_digest(paths):
        raise _resume_error(
            root, "the input file list changed since the checkpoint was "
                  "written (resume requires the identical source list)")
    if model_hash is not None and checkpoint["model_hash"] != model_hash:
        raise _resume_error(
            root, "the model changed since the checkpoint was written")
    # Every checkpointed shard must hold exactly the bytes the
    # checkpoint says it does — a short file here means external
    # truncation (the flush protocol itself never checkpoints a shard
    # before it is fully on disk).
    for spec in checkpoint["shards"]:
        shard = Path(root) / "shards" / spec["file"]
        expected = (int(spec["rows"]) * int(checkpoint["hidden"])
                    * SHARD_DTYPE.itemsize)
        actual = shard.stat().st_size if shard.is_file() else -1
        if actual != expected:
            raise _resume_error(
                root, f"checkpointed shard {spec['file']} is "
                      f"{'missing' if actual < 0 else f'{actual} bytes'}, "
                      f"expected {expected} ({spec['rows']} rows x "
                      f"{checkpoint['hidden']}): truncated or deleted "
                      f"outside the ingest protocol")
    return checkpoint


def _fresh_checkpoint(root, paths, model, service, config):
    """Checkpoint skeleton for a brand-new index (mode ``fresh``)."""
    model_level = getattr(model.encoder, "featurizer", None)
    model_level = model_level.level if model_level is not None else "rtl"
    frontend = get_frontend(config.level if config.level is not None
                            else model_level)
    if frontend.level != model_level:
        raise ModelError(
            f"cannot ingest a {frontend.level}-level index with a "
            f"{model_level}-level model (train with --level "
            f"{frontend.level} or change --level)")
    chunk_opts = ((config.chunk_config or ChunkConfig())
                  if config.chunks else None)
    return {
        "version": CHECKPOINT_VERSION,
        "mode": "fresh",
        "model_hash": service.fingerprint,
        "options": {
            "top": config.top,
            "level": frontend.level,
            "do_trim": getattr(frontend, "do_trim", True),
            "schema": frontend.schema_fingerprint(),
            "use_cache": config.use_cache,
        },
        "chunks": chunk_opts.as_dict() if chunk_opts else None,
        "hidden": int(model.encoder.hidden),
        "input_digest": _input_digest(paths),
        "base": None,
        "total": len(paths),
        "completed": 0,
        "entries": [],
        "rows": [],
        "shards": [],
        "taken_base_names": [],
    }


def _append_checkpoint(root, paths, index, service, config):
    """Checkpoint skeleton for growing an existing index (``append``)."""
    if service.fingerprint != index.model_hash:
        raise IndexStoreError(
            "model fingerprint does not match the index (ingest with "
            "the index's own model, or rebuild with fresh=True)")
    meta = index.meta
    return {
        "version": CHECKPOINT_VERSION,
        "mode": "append",
        "model_hash": index.model_hash,
        "options": dict(meta["options"]),
        "chunks": meta.get("chunks"),
        "hidden": int(meta["store"]["hidden"]),
        "input_digest": _input_digest(paths),
        "base": {
            "entries": len(meta["entries"]),
            "rows": len(meta.get("rows") or []),
            "shards": len(meta["store"]["shards"]),
        },
        "total": len(paths),
        "completed": 0,
        "entries": [],
        "rows": [],
        "shards": [],
        "taken_base_names": [e["name"] for e in meta["entries"]],
    }


def _entry_from_payload(state, payload):
    """Index entry dict (plus row specs) for one worker payload."""
    name = state.unique_name(payload["stem"])
    entry = {"name": name, "path": payload["path"], "key": payload["key"],
             "status": "error" if "error" in payload else "ok"}
    if "error" in payload:
        entry["error"] = payload["error"]
        return entry, []
    entry.update(design=payload["design"], nodes=payload["nodes"],
                 edges=payload["edges"], cached=payload["cached"])
    specs = [{"kind": "design", "name": name}]
    specs.extend({"kind": "chunk", "parent": name, "region": region}
                 for region in payload["regions"])
    return entry, specs


class _FlushBuffer:
    """Bounded accumulator of embedding rows between shard flushes."""

    def __init__(self, hidden):
        self.hidden = hidden
        self.blobs = []
        self.rows = 0
        self.colors = {}

    def add(self, payload, name):
        if "error" in payload:
            return
        self.blobs.append(payload["rows"])
        self.rows += payload["n_rows"]
        if "colors" in payload:
            self.colors[name] = payload["colors"]

    def matrix(self):
        if not self.rows:
            return np.empty((0, self.hidden), dtype=SHARD_DTYPE)
        return np.frombuffer(b"".join(self.blobs),
                             dtype=SHARD_DTYPE).reshape(-1, self.hidden)

    def clear(self):
        self.blobs, self.rows, self.colors = [], 0, {}


def _flush(state, buffer):
    """Land one flush durably: shard, sidecar line, checkpoint — in
    that order, so the checkpoint only ever references durable bytes."""
    if buffer.rows:
        # next_shard_ordinal scans the shards directory, so base-index
        # shards and crash orphans are cleared automatically.
        ordinal = next_shard_ordinal(state.root, state.shards)
        state.shards.append(write_shard(state.root, ordinal,
                                        buffer.matrix(), fsync=True))
    if buffer.colors:
        _append_sidecar(state.root / SIG_SIDECAR_NAME, buffer.colors)
    buffer.clear()
    state.write_checkpoint()


def _progress_stats(state, session_done, session_rows, failed, started):
    elapsed = max(time.monotonic() - started, 1e-9)
    remaining = len(state.paths) - state.completed
    designs_per_sec = session_done / elapsed
    return {
        "done": state.completed,
        "total": len(state.paths),
        "failed": failed,
        "rows": state.new_rows,
        "rows_per_sec": session_rows / elapsed,
        "designs_per_sec": designs_per_sec,
        "eta_seconds": (remaining / designs_per_sec
                        if designs_per_sec > 0 else None),
        "elapsed_seconds": elapsed,
    }


def _compact_shards(state):
    """Merge this ingest's per-flush mini-shards into one shard.

    Pure byte concatenation of already-unit rows (no re-normalization,
    no re-embedding): the merged shard is bit-identical to the parts it
    replaces, so query results cannot change.  Old mini-shards become
    stale files, removed only after the new ``meta.json`` lands.
    """
    if len(state.shards) < COMPACT_MIN_SHARDS:
        return False
    store = ShardStore(state.root, state.hidden, state.shards)
    merged = store.matrix()
    ordinal = next_shard_ordinal(state.root, state.shards)
    state.shards = [write_shard(state.root, ordinal, merged, fsync=True)]
    return True


def _finalize(state, model, service, config, report):
    """Assemble and atomically publish the completed index."""
    root = state.root
    if state.mode == "append":
        meta = _read_meta(root)
        base = state.base
        if (meta.get("version") != FORMAT_VERSION
                or meta["model_hash"] != state.model_hash
                or len(meta["entries"]) < base["entries"]):
            raise _resume_error(
                root, "the base index changed while the ingest was "
                      "suspended (model or entry count mismatch)")
        # Idempotent re-finalize: a crash after meta landed but before
        # the checkpoint was removed re-runs this merge over the *base
        # prefix* of the already-merged meta, producing the same result.
        meta["entries"] = meta["entries"][:base["entries"]] + state.entries
        meta["rows"] = (meta.get("rows") or [])[:base["rows"]] + state.rows
        meta["store"]["shards"] = (meta["store"]["shards"][:base["shards"]]
                                   + state.shards)
    else:
        meta = {
            "version": FORMAT_VERSION,
            "model_hash": state.model_hash,
            "options": state.options,
            "store": {
                "dtype": "float32",
                "hidden": state.hidden,
                "shards": state.shards,
            },
            "entries": state.entries,
            "rows": state.rows,
            "chunks": state.chunk_spec,
        }

    # IVF: re-fit from everything when the rows added since the last
    # k-means fit cross the growth threshold (assign-only growth slowly
    # degrades recall as the corpus drifts from the fitted centroids);
    # otherwise grow the existing quantizer in place.  The fit runs in a
    # background thread, overlapped with signature compaction below.
    all_specs = meta["store"]["shards"]
    store = ShardStore(root, state.hidden, all_specs)
    total_rows = store.rows
    ivf_box = {}

    def _fit_ivf():
        old_spec = meta.get("ivf") if state.mode == "append" else None
        old_ivf = None
        if old_spec:
            try:
                old_ivf = IVFIndex.load(root / old_spec.get("file", ""))
            except IndexStoreError:
                old_ivf = None
        fitted = (old_spec or {}).get("fitted_rows", 0)
        grown = total_rows - fitted
        if (old_ivf is not None and old_ivf.rows == total_rows
                - state.new_rows
                and grown <= max(IVF_MIN_ROWS, int(REFIT_GROWTH * fitted))):
            new_store = ShardStore(root, state.hidden, state.shards)
            old_ivf.add(new_store.matrix())
            ivf_box["ivf"] = old_ivf
            ivf_box["fitted_rows"] = fitted
        elif total_rows >= IVF_MIN_ROWS:
            ivf_box["ivf"] = IVFIndex.fit(store.matrix())
            ivf_box["fitted_rows"] = total_rows
        else:
            ivf_box["ivf"] = None

    fitter = threading.Thread(target=_fit_ivf, name="ingest-ivf-fit")
    fitter.start()

    # Signatures: merge the sidecar into signatures.json.  Fresh chunked
    # ingests sign everything; appends extend an existing signature file
    # (an unsigned base index stays unsigned — a partially-signed corpus
    # could never serve the structural channel).
    sidecar = _read_sidecar(root / SIG_SIDECAR_NAME)
    has_chunk_rows = any(spec.get("kind") == "chunk"
                         for spec in meta.get("rows") or [])
    if state.mode == "append":
        stored = load_signatures(root)
        if stored is not None:
            colors, radius = stored
            colors.update(sidecar)
            write_signatures(root, colors, radius=radius)
    elif has_chunk_rows:
        write_signatures(root, sidecar, radius=SIG_RADIUS)
    else:
        (root / SIG_NAME).unlink(missing_ok=True)

    fitter.join()
    if ivf_box.get("ivf") is not None:
        name = _next_ivf_name(root)
        ivf_box["ivf"].save(root / name)
        meta["ivf"] = {"clusters": ivf_box["ivf"].n_clusters, "file": name,
                       "fitted_rows": int(ivf_box["fitted_rows"])}
    else:
        meta["ivf"] = None

    meta["build"] = report
    if state.mode == "fresh":
        save_model(model, root / MODEL_NAME)
    _write_meta(root, meta)
    # Only after the new meta is live may the ingest scaffolding and any
    # superseded files disappear.
    (root / CHECKPOINT_NAME).unlink(missing_ok=True)
    (root / SIG_SIDECAR_NAME).unlink(missing_ok=True)
    _clean_stale_files(root, meta)
    return FingerprintIndex.load(root)


def ingest_corpus(root, paths, model=None, config=None, resume=True,
                  fresh=False):
    """Streaming, resumable, multiprocess corpus ingest.

    The production-scale sibling of
    :func:`~repro.index.store.build_index` /
    :func:`~repro.index.store.add_to_index`: same on-disk format, same
    query results, but bounded memory, durable incremental progress,
    and a worker pool that runs extract → chunk → embed end to end.

    Modes (selected automatically):

    - **resume** — a checkpoint exists at ``root`` and ``resume`` is
      true: continue exactly where the previous run stopped (the input
      list and model must be unchanged).
    - **append** — no checkpoint, but a loadable index exists: stream
      the new designs in without touching existing files (the index
      keeps serving its old meta until the new one atomically lands).
    - **fresh** — otherwise (or whenever ``fresh=True``): build a new
      index from scratch, discarding any checkpoint or existing index.

    Args:
        root: index directory.
        paths: Verilog files to ingest (see :func:`walk_sources` for
            expanding a directory tree).
        model: a :class:`~repro.core.gnn4ip.GNN4IP`; required for fresh
            ingests, optional for append/resume (defaults to the
            index's own persisted model).
        config: an :class:`IngestConfig`.
        resume: pick up an existing checkpoint (refused loudly when its
            input list, model, or shard bytes do not match).
        fresh: ignore any checkpoint and existing index and start over.

    Returns:
        ``(index, report)``.  ``index`` is the loaded
        :class:`~repro.index.store.FingerprintIndex`, or ``None`` when
        the run paused at ``config.stop_after`` (the report then has
        ``ingest.state == "paused"``).
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    config = config if config is not None else IngestConfig()
    paths = [str(p) for p in paths]
    if not paths:
        raise IndexStoreError("no input files to ingest")

    if fresh:
        (root / CHECKPOINT_NAME).unlink(missing_ok=True)
        (root / SIG_SIDECAR_NAME).unlink(missing_ok=True)

    # -- mode selection + model resolution ------------------------------------
    checkpoint = None
    if resume and not fresh:
        checkpoint = _load_checkpoint(root, paths, None)
    base_index = None
    if checkpoint is None:
        if not fresh and (root / "meta.json").is_file():
            base_index = FingerprintIndex.load(root)
        if model is None:
            if base_index is not None:
                model = base_index.model()
            else:
                raise ModelError("a fresh ingest needs a model "
                                 "(pass model=... or --model)")
        service = EmbeddingService(model, batch_size=config.batch_size)
        if base_index is not None:
            checkpoint = _append_checkpoint(root, paths, base_index,
                                            service, config)
        else:
            checkpoint = _fresh_checkpoint(root, paths, model, service,
                                           config)
        resumed = False
    else:
        if model is None:
            model_path = root / MODEL_NAME
            if not model_path.is_file():
                raise _resume_error(root, "model.npz is missing")
            model = load_model(model_path)
        service = EmbeddingService(model, batch_size=config.batch_size)
        if service.fingerprint != checkpoint["model_hash"]:
            raise _resume_error(
                root, "the model changed since the checkpoint was written")
        resumed = True

    state = _IngestState(root, paths, checkpoint)
    # The running code's feature schema must match the one the rows
    # already on disk were extracted under, or old and new rows would be
    # silently incomparable.
    check_frontend = get_frontend(
        state.options["level"],
        do_trim=state.options.get("do_trim", True))
    if state.options.get("schema") not in (None,
                                           check_frontend
                                           .schema_fingerprint()):
        raise _resume_error(
            root, "the feature schema changed since the checkpoint was "
                  "written (stored rows would not be comparable)")
    # The model must be durable before the first checkpoint: a resumed
    # fresh ingest reloads it from the index root.
    if state.mode == "fresh" and not resumed:
        save_model(model, root / MODEL_NAME)

    remaining = paths[state.completed:]
    options = {k: v for k, v in state.options.items()
               if k in ("do_trim",)}
    cache_dir = (str(root / CACHE_DIR)
                 if state.options.get("use_cache", True) else None)
    init_args = (model, state.options["level"], options,
                 state.options["top"], state.chunk_spec, cache_dir,
                 config.batch_size)

    from repro.index.extractor import default_jobs

    jobs = (config.jobs if config.jobs is not None
            else default_jobs(len(remaining)))
    buffer = _FlushBuffer(state.hidden)
    started = time.monotonic()
    session_done = session_rows = failed_this_run = 0
    last_progress = started
    paused = False

    def _emit_progress(force=False):
        nonlocal last_progress
        if config.progress is None:
            return
        now = time.monotonic()
        if force or now - last_progress >= config.progress_every:
            last_progress = now
            config.progress(_progress_stats(state, session_done,
                                            session_rows,
                                            failed_this_run, started))

    def _consume(payload):
        nonlocal session_done, session_rows, failed_this_run
        entry, row_specs = _entry_from_payload(state, payload)
        state.entries.append(entry)
        state.rows.extend(row_specs)
        buffer.add(payload, entry["name"])
        state.completed += 1
        session_done += 1
        session_rows += payload.get("n_rows", 0)
        if entry["status"] == "error":
            failed_this_run += 1
        if buffer.rows >= config.flush_rows:
            _flush(state, buffer)
        _emit_progress()

    tasks = [(state.completed + i, path)
             for i, path in enumerate(remaining)]
    if config.stop_after is not None:
        tasks = tasks[:config.stop_after]
        paused = len(tasks) < len(remaining)

    pool = None
    try:
        if jobs > 1 and len(tasks) > 1:
            chunksize = max(1, min(16, len(tasks) // (jobs * 4) or 1))
            pool = multiprocessing.Pool(processes=jobs,
                                        initializer=_init_ingest_worker,
                                        initargs=init_args)
            for _seq, payload in pool.imap(_ingest_task, tasks,
                                           chunksize=chunksize):
                _consume(payload)
        else:
            jobs = 1
            _init_ingest_worker(*init_args)
            for task in tasks:
                _consume(_ingest_task(task)[1])
    except KeyboardInterrupt:
        # Land what is already complete before propagating: the next
        # run resumes from this flush instead of from the last one.
        _flush(state, buffer)
        raise
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()

    _flush(state, buffer)
    elapsed = time.monotonic() - started
    compacted = False
    if not paused:
        compacted = _compact_shards(state)

    ok_entries = [e for e in state.entries if e["status"] == "ok"]
    chunk_rows = sum(1 for spec in state.rows
                     if spec.get("kind") == "chunk")
    cached = sum(1 for e in ok_entries if e.get("cached"))
    report = {
        "mode": "ingest",
        "files": len(state.entries),
        "embedded": len(ok_entries),
        "embedded_fresh": len(ok_entries),
        "embeddings_reused": 0,
        "failures": len(state.entries) - len(ok_entries),
        "chunk_rows": chunk_rows,
        "cache": ({"hits": cached, "misses": len(ok_entries) - cached,
                   "stores": len(ok_entries) - cached, "corrupt": 0,
                   "hit_bytes": 0, "store_bytes": 0}
                  if state.options.get("use_cache", True) else None),
        "extract_seconds": elapsed,
        "embed_seconds": 0.0,
        "jobs": jobs,
        "ingest": {
            "state": "paused" if paused else "complete",
            "resumed": resumed,
            "ingest_mode": state.mode,
            "completed": state.completed,
            "total": len(paths),
            "session_designs": session_done,
            "session_rows": session_rows,
            "flushes": state.flushes,
            "flush_rows": config.flush_rows,
            "shards_written": len(state.shards),
            "compacted": compacted,
            "wall_seconds": elapsed,
            "designs_per_sec": session_done / max(elapsed, 1e-9),
            "rows_per_sec": session_rows / max(elapsed, 1e-9),
        },
    }
    _emit_progress(force=True)
    if paused:
        return None, report
    index = _finalize(state, model, service, config, report)
    return index, report
