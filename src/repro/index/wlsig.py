"""Structural Weisfeiler-Lehman signatures for rank fusion.

The GNN embedding space is trained on whole-design pairs, so at *chunk*
granularity unrelated 48-node subgraphs embed nearly identically —
cosine alone cannot rank a grafted 30% of a victim above incidental
host overlap.  This module adds a second, purely structural channel:

- every stored design gets a **signature** — the multiset of fanin-only
  Weisfeiler-Lehman node colors (radius :data:`SIG_RADIUS`).  Fanin-only
  refinement matters: a stolen gate keeps its predecessors (they were
  stolen with it) but gains new successors inside the host, so colors
  that look *backwards* survive theft while bidirectional colors do not.
- a suspect is scored by **reverse containment**: how much of the
  stored design's color mass reappears in the suspect, with each color
  weighted by its inverse design frequency (IDF) so boilerplate logic
  shared by every design counts for little and family-specific
  structure counts for a lot.
- each stored entry is **background-calibrated**: its mean containment
  against the *other* stored designs is subtracted, so entries made of
  promiscuous generic logic stop outranking genuine partial matches.

Signatures live in ``signatures.json`` next to ``meta.json``; they are
written by ``index build`` / ``index add`` (the graphs are already in
hand) and loaded lazily.  An index without the file — e.g. one migrated
from v3 without re-extraction — simply serves without the structural
channel.  Color hashing is BLAKE2-based and therefore stable across
processes and ``PYTHONHASHSEED`` values, unlike builtin ``hash``.
"""

import hashlib
import json
from collections import Counter
from pathlib import Path

import numpy as np

from repro.errors import IndexStoreError

SIG_NAME = "signatures.json"
#: Bump when the color construction changes shape: stored signatures
#: are only comparable to fresh suspect colors at the same version.
SIG_VERSION = 1
#: WL refinement rounds.  Radius 1 (a node plus its direct fanin) is
#: deliberately shallow: every extra round widens the blast radius of a
#: graft's remapped inputs, destroying exactly the colors partial-theft
#: detection needs to keep.
SIG_RADIUS = 1
#: Cap on background-calibration probes per entry (the full pairwise
#: pass is quadratic; a deterministic, evenly-spaced sample of other
#: entries estimates the same mean on large corpora).
BG_PROBES = 128


def _digest(payload):
    """Stable 64-bit color id for a byte payload."""
    return int.from_bytes(
        hashlib.blake2b(payload, digest_size=8).digest(), "big")


def wl_colors(graph, radius=SIG_RADIUS):
    """Fanin-only WL color multiset of a :class:`~repro.ir.graphir.GraphIR`.

    Each node starts from ``(kind, label)`` and is refined ``radius``
    times with the *sorted multiset of its predecessors'* colors — never
    its successors', so the colors of stolen logic are invariant to the
    new fanout it grows inside a host design.  Returns a
    :class:`collections.Counter` of 64-bit color ids.
    """
    colors = [_digest(f"{node.kind}\x1f{node.label}".encode())
              for node in graph.nodes]
    for _ in range(radius):
        colors = [
            _digest(b"".join(
                value.to_bytes(8, "big")
                for value in [colors[i]]
                + sorted(colors[j] for j in graph.predecessors(i))))
            for i in range(len(graph.nodes))]
    return Counter(colors)


def write_signatures(root, colors_by_name, radius=SIG_RADIUS):
    """Atomically persist ``{entry name: color Counter}`` signatures."""
    payload = {
        "version": SIG_VERSION,
        "radius": int(radius),
        "colors": {
            name: {format(color, "x"): int(count)
                   for color, count in sorted(counter.items())}
            for name, counter in sorted(colors_by_name.items())
        },
    }
    root = Path(root)
    tmp = root / (SIG_NAME + ".tmp")
    tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
    tmp.replace(root / SIG_NAME)


def load_signatures(root):
    """``(colors_by_name, radius)`` from ``signatures.json``, or ``None``.

    Absent files mean the index predates signatures (or was migrated
    without re-extraction); version mismatches mean the color scheme
    moved on — both degrade to serving without the structural channel
    rather than refusing the index.  A *corrupt* file is an error.
    """
    path = Path(root) / SIG_NAME
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise IndexStoreError(f"corrupt index signatures: {exc}") from exc
    if payload.get("version") != SIG_VERSION:
        return None
    colors = {
        name: Counter({int(color, 16): int(count)
                       for color, count in mapping.items()})
        for name, mapping in payload.get("colors", {}).items()
    }
    return colors, int(payload.get("radius", SIG_RADIUS))


class SignatureScorer:
    """IDF-weighted reverse-containment scoring over stored signatures.

    Args:
        names: ok-entry names in engine parent order.
        designs: the matching design name per entry (IDF counts a color
            once per *design*, so four stored variants of one family do
            not deflate their own colors' weight).
        colors_by_name: signature Counters, one per name.
        radius: WL radius the signatures were built at (suspect colors
            must be computed at the same radius).
    """

    def __init__(self, names, designs, colors_by_name, radius=SIG_RADIUS):
        self.radius = int(radius)
        self._names = list(names)
        self._designs = list(designs)
        distinct = sorted(set(self._designs))
        self._entry_colors = [colors_by_name[name] for name in self._names]

        frequency = Counter()
        for design in distinct:
            seen = set()
            for name, owner in zip(self._names, self._designs):
                if owner == design:
                    seen |= set(colors_by_name[name])
            for color in seen:
                frequency[color] += 1
        n = len(distinct)
        self._idf = {color: float(np.log((n + 1) / (df + 0.5)))
                     for color, df in frequency.items()}
        #: Weight of a color never seen in the corpus (df = 0).
        self._unseen_idf = float(np.log((n + 1) / 0.5))

        self._mass = np.array([
            max(sum(count * self._idf[color]
                    for color, count in counter.items()), 1e-12)
            for counter in self._entry_colors])
        # Inverted postings: color -> [(entry ordinal, stored count)].
        self._postings = {}
        for ordinal, counter in enumerate(self._entry_colors):
            for color, count in counter.items():
                self._postings.setdefault(color, []).append(
                    (ordinal, count))
        self._background = self._calibrate()

    def __len__(self):
        return len(self._names)

    def _raw(self, query_colors):
        """Per-entry containment: IDF mass of the entry's colors found
        in the query, normalized by the entry's own total mass."""
        found = np.zeros(len(self._names))
        for color, query_count in query_colors.items():
            postings = self._postings.get(color)
            if not postings:
                continue
            weight = self._idf.get(color, self._unseen_idf)
            for ordinal, stored_count in postings:
                found[ordinal] += min(stored_count, query_count) * weight
        return found / self._mass

    def _calibrate(self):
        """Mean containment of each entry against other-design entries.

        Probes are an evenly-spaced deterministic sample (all entries on
        small corpora), so two loads of one index always calibrate
        identically.
        """
        count = len(self._names)
        if count <= 1:
            return np.zeros(count)
        probes = range(count)
        if count > BG_PROBES:
            step = count / BG_PROBES
            probes = sorted({int(i * step) for i in range(BG_PROBES)})
        total = np.zeros(count)
        hits = np.zeros(count)
        for probe in probes:
            scores = self._raw(self._entry_colors[probe])
            foreign = np.array([design != self._designs[probe]
                                for design in self._designs])
            total[foreign] += scores[foreign]
            hits[foreign] += 1
        return total / np.maximum(hits, 1)

    def scores(self, query_colors):
        """Background-calibrated structural scores for one suspect.

        Returns one float per stored entry, in engine parent order —
        ready to fuse with the embedding channel
        (:meth:`repro.index.engine.QueryEngine.query_groups`).
        """
        return self._raw(query_colors) - self._background
