"""IVF coarse quantizer: pure-numpy spherical k-means over stored rows.

An exact top-k query scores the suspect against every stored fingerprint.
That is one BLAS matmul — fast, but linear in the corpus.  The IVF
(inverted-file) pre-filter makes it sublinear: k-means clusters the unit
embedding rows once at build time, each query probes only the ``nprobe``
clusters whose centroids score highest, and the candidate rows from those
clusters are re-ranked with **exact** dot products.  Results are
approximate only in which rows make the candidate pool; scores are never
approximated.  ``benchmarks/bench_query.py`` enforces the recall@10 floor.

The quantizer grows in place: ``IVFIndex.add`` assigns new rows to their
nearest existing centroid, so an incremental ``index add`` never re-runs
k-means or touches existing assignments.  Persistence is a single
``ivf.npz`` (centroids + per-row assignments) written atomically; the
inverted lists are rebuilt from the assignments at load time (one argsort
over int32 row ids — microseconds at corpus scale).
"""

import zipfile
from pathlib import Path

import numpy as np

from repro.errors import IndexStoreError

#: Legacy fixed quantizer file name; current indexes reference a
#: generation-named ``ivf-NNNNN.npz`` from ``meta.json`` so a rebuild
#: never overwrites the file the live metadata points at.
IVF_NAME = "ivf.npz"


def ivf_filename(ordinal):
    """Generation-named quantizer file for a build/add ordinal."""
    return f"ivf-{ordinal:05d}.npz"
#: Probe count used when a query does not choose one: with sqrt-scaled
#: cluster counts this keeps recall@10 well above 0.95 on clustered
#: corpora (see benchmarks/bench_query.py) at a fraction of exact cost.
DEFAULT_NPROBE = 8
#: Corpora below this size are served exactly; an IVF would only add
#: overhead (and k-means over a handful of rows is meaningless).
MIN_ROWS = 256
#: Re-fit (instead of grow) the quantizer when the rows appended since
#: the last k-means fit exceed this fraction of the fitted row count:
#: assign-only growth never moves centroids, so recall drifts down as
#: the corpus outgrows the distribution the centroids were fitted on.
REFIT_GROWTH = 0.5


def default_clusters(rows):
    """sqrt-scaled cluster count, the usual IVF sizing rule."""
    return max(4, min(1024, int(round(rows ** 0.5))))


class IVFIndex:
    """Coarse quantizer + inverted lists over the stored embedding rows."""

    def __init__(self, centroids, assignments):
        self.centroids = np.ascontiguousarray(centroids, dtype=np.float32)
        self.assignments = np.ascontiguousarray(assignments,
                                                dtype=np.int32)
        self._lists = None

    @property
    def n_clusters(self):
        return int(self.centroids.shape[0])

    @property
    def rows(self):
        return int(self.assignments.shape[0])

    # -- construction --------------------------------------------------------
    @classmethod
    def fit(cls, unit_matrix, n_clusters=None, seed=0, iterations=12):
        """Spherical k-means over unit rows (cosine == dot for unit data).

        Pure numpy: assignment is one matmul per iteration, centroid
        updates are per-dimension ``bincount`` sums.  Empty clusters are
        reseeded from random rows between iterations; a run ended by the
        iteration cap may still finish with a few unused centroids,
        which cost a probe slot but are otherwise harmless (their
        inverted lists are empty).  Deterministic for a given
        (matrix, n_clusters, seed).
        """
        matrix = np.ascontiguousarray(unit_matrix, dtype=np.float32)
        rows = matrix.shape[0]
        if rows == 0:
            raise IndexStoreError("cannot fit an IVF over an empty store")
        if n_clusters is None:
            n_clusters = default_clusters(rows)
        n_clusters = min(n_clusters, rows)
        rng = np.random.default_rng(seed)
        centroids = matrix[rng.choice(rows, size=n_clusters,
                                      replace=False)].copy()
        assign = np.full(rows, -1, dtype=np.int64)
        for _ in range(iterations):
            new_assign = np.argmax(matrix @ centroids.T, axis=1)
            if np.array_equal(new_assign, assign):
                break
            assign = new_assign
            counts = np.bincount(assign, minlength=n_clusters)
            sums = np.empty((n_clusters, matrix.shape[1]), dtype=np.float64)
            for dim in range(matrix.shape[1]):
                sums[:, dim] = np.bincount(assign, weights=matrix[:, dim],
                                           minlength=n_clusters)
            empty = counts == 0
            if empty.any():
                sums[empty] = matrix[rng.choice(rows, size=int(empty.sum()))]
            norms = np.linalg.norm(sums, axis=1, keepdims=True)
            centroids = (sums / np.maximum(norms, 1e-12)).astype(np.float32)
        # One final assignment against the *returned* centroids: when the
        # iteration cap ends the loop right after a centroid update, the
        # loop-carried assignments describe the previous centroids and
        # the persisted inverted lists would disagree with probe()'s
        # centroid ranking.
        assign = np.argmax(matrix @ centroids.T, axis=1)
        return cls(centroids, assign.astype(np.int32))

    def assign(self, unit_vectors):
        """Nearest-centroid id for each (unit) vector."""
        vectors = np.ascontiguousarray(unit_vectors, dtype=np.float32)
        return np.argmax(vectors @ self.centroids.T, axis=1).astype(np.int32)

    def add(self, unit_vectors):
        """Append new rows (assigned to existing centroids) in place."""
        if len(unit_vectors):
            self.assignments = np.concatenate(
                [self.assignments, self.assign(unit_vectors)])
            self._lists = None

    # -- probing -------------------------------------------------------------
    def effective_nprobe(self, nprobe):
        """The probe count actually used for a requested value.

        ``None`` means :data:`DEFAULT_NPROBE`; everything is clamped to
        ``[1, n_clusters]``.  The single source of truth for both the
        probe itself and any user-facing report of it.
        """
        if nprobe is None:
            nprobe = DEFAULT_NPROBE
        return max(1, min(int(nprobe), self.n_clusters))

    def _inverted_lists(self):
        """(row_ids sorted by cluster, per-cluster start offsets)."""
        if self._lists is None:
            order = np.argsort(self.assignments, kind="stable")
            counts = np.bincount(self.assignments,
                                 minlength=self.n_clusters)
            starts = np.concatenate(([0], np.cumsum(counts)))
            self._lists = (order.astype(np.int64), starts.astype(np.int64))
        return self._lists

    def probe(self, unit_queries, nprobe=None):
        """Candidate rows for a batch of queries.

        Returns ``(rows, offsets)``: the concatenated candidate row ids
        and per-query offsets into them (query ``i`` owns
        ``rows[offsets[i]:offsets[i + 1]]``).  Candidates preserve
        cluster order; the engine re-ranks them exactly.
        """
        queries = np.ascontiguousarray(unit_queries, dtype=np.float32)
        nprobe = self.effective_nprobe(nprobe)
        scores = queries @ self.centroids.T
        if nprobe < self.n_clusters:
            top = np.argpartition(-scores, nprobe - 1, axis=1)[:, :nprobe]
        else:
            top = np.broadcast_to(np.arange(self.n_clusters),
                                  (len(queries), self.n_clusters))
        order, starts = self._inverted_lists()
        # One concatenate over every (query, cluster) slice; per-query
        # offsets fall out of the probed clusters' list lengths.
        parts = [order[starts[c]:starts[c + 1]]
                 for clusters in top for c in clusters]
        rows = (np.concatenate(parts) if parts
                else np.empty(0, dtype=np.int64))
        per_query = (starts[top + 1] - starts[top]).sum(axis=1)
        offsets = np.concatenate(([0], np.cumsum(per_query)))
        return rows, offsets.astype(np.int64)

    # -- persistence ---------------------------------------------------------
    def save(self, path):
        """Write ``ivf.npz`` atomically (temp file + rename)."""
        path = Path(path)
        tmp = path.with_suffix(".tmp.npz")
        np.savez(tmp, centroids=self.centroids,
                 assignments=self.assignments)
        tmp.replace(path)

    @classmethod
    def load(cls, path):
        try:
            with np.load(path, allow_pickle=False) as data:
                return cls(data["centroids"], data["assignments"])
        except (OSError, KeyError, ValueError,
                zipfile.BadZipFile) as exc:
            raise IndexStoreError(
                f"corrupt IVF quantizer at {path}: {exc} "
                f"(rebuild the index or delete the file to serve "
                f"exact-only)") from exc
