"""Batched sublinear query serving over the memory-mapped shard store.

One :class:`QueryEngine` turns the stored corpus into a lookup service:

- **Batched scoring** — ``query_many`` scores a whole batch of suspects
  against every shard with one BLAS matmul per shard, instead of one
  pass per suspect.  Single-row batches are padded to two rows before
  the matmul so BLAS always takes the same gemm kernel: a lone
  ``query_vector`` call is **bit-identical** to the same vector inside
  any batch (OpenBLAS routes 1-row gemms to a differently-rounded
  kernel otherwise).
- **Partial top-k** — ranks come from ``argpartition`` (O(n)) plus a
  sort of only ``k`` candidates, not a full ``argsort`` of the corpus;
  large corpora first reduce each row to its best score blocks.  The
  returned hits order ties toward the lower row id; *which* of several
  boundary-tied rows enters the top-k is deterministic for a given
  corpus but unspecified (the price of partial selection).
- **IVF pre-filter** — with a fitted :class:`~repro.index.ann.IVFIndex`,
  only the rows in the ``nprobe`` best clusters are gathered and scored
  (exact dot products, so scores are never approximated — only the
  candidate pool is).  ``exact=True`` is the escape hatch that bypasses
  the quantizer entirely.
- **Chunk aggregation** — a v4 index stores extra rows for subgraph
  chunks (:mod:`repro.index.chunks`), each carrying a parent-design
  back-pointer.  ``query_groups`` scores a *group* of query parts (the
  whole suspect plus its own chunks) against every stored row, reduces
  to one score per parent design (block maximum over the part x row
  score matrix), and ranks parents by best score, then coverage (the
  fraction of the parent's rows above ``delta``), then id.  Hits carry
  the matching evidence: which stored region matched (``region``),
  which suspect region matched it (``query_region``), and the coverage.
  An index without chunk rows never enters this path — ``query_many``
  on it is bit-identical to v3 serving.
- **Structural rank fusion** — when the caller also supplies per-group
  structural scores (:mod:`repro.index.wlsig` reverse-containment, one
  score per parent design), parents are ranked by the *better of their
  two channel ranks*: the embedding channel (suspect chunks vs stored
  chunk rows) finds regions the encoder separates, the structural
  channel finds regions it cannot.  The reported ``score`` then becomes
  the delta-comparable whole-suspect vs whole-design cosine — chunk
  cosines live in a saturated region of the embedding space and must
  not be compared against the decision boundary — while ``via`` /
  ``region`` / ``query_region`` / ``coverage`` keep describing the best
  raw (part, row) pairing as locality evidence.  Fused queries always
  score exactly: the structural channel visits every stored design
  anyway, so the IVF shortcut buys nothing there.
"""

from dataclasses import dataclass

import numpy as np

from repro.errors import IndexStoreError

#: Row-segment width for two-stage exact top-k: block maxima are reduced
#: for the whole batch in one vectorized pass, then each row only
#: partitions the ~k*_BLOCK candidates from its best blocks instead of
#: the full corpus (the top-k elements of a row always live in its top-k
#: blocks by max).
_BLOCK = 1024


@dataclass
class QueryHit:
    """One ranked index entry for a query design.

    The last four fields are locality evidence from chunk aggregation
    (:meth:`QueryEngine.query_groups`); they keep their defaults on a
    chunk-less index, so v3-style consumers never see them change.

    Attributes:
        via: ``"design"`` when the whole-design row scored best,
            ``"chunk"`` when a stored subgraph chunk did.
        region: stored region descriptor of the best-matching chunk row
            (``None`` for whole-design matches).
        query_region: region descriptor of the suspect part that
            produced the best score (``None`` for the whole suspect).
        coverage: fraction of the design's stored rows scoring above
            delta for this query (``None`` outside chunk aggregation).

    Under structural rank fusion ``score`` is always the whole-suspect
    vs whole-design cosine (the only pairing comparable to ``delta``),
    even when a chunk pairing is the evidence ``via`` points at.
    """

    name: str
    path: str
    design: str
    score: float
    is_piracy: bool
    via: str = "design"
    region: dict = None
    query_region: dict = None
    coverage: float = None


class QueryEngine:
    """Score query vectors against the stored (unit float32) corpus.

    Args:
        blocks: per-shard ``(rows, hidden)`` float32 arrays or memmaps,
            in global row order (``ShardStore.blocks()``).  The engine is
            deliberately storage-agnostic — it sees plain row blocks, so
            tests and benchmarks feed in-memory arrays while production
            feeds memmaps — and therefore keeps its own row-offset table
            rather than depending on :class:`ShardStore`.
        entries: the ok index entries, one per stored row, in row order.
        ivf: optional fitted :class:`~repro.index.ann.IVFIndex` over the
            same rows.
    """

    def __init__(self, blocks, entries, ivf=None):
        self._blocks = list(blocks)
        self._entries = entries
        self.ivf = ivf
        self._offsets = np.concatenate(
            ([0], np.cumsum([len(b) for b in self._blocks]))
        ).astype(np.int64)
        self.hidden = (int(self._blocks[0].shape[1]) if self._blocks
                       else 0)
        #: True when any stored row is a subgraph chunk; plain designs
        #: keep the legacy (bit-identical) scoring paths.
        self.chunked = any(e.get("kind") == "chunk" for e in entries)
        self._is_chunk = np.array([e.get("kind") == "chunk"
                                   for e in entries], dtype=bool)
        if self.chunked:
            parent_of = np.array([int(e["parent_id"]) for e in entries],
                                 dtype=np.int64)
            self._parent_of = parent_of
            self.n_parents = int(parent_of.max()) + 1 if len(parent_of) \
                else 0
            self._parent_row = np.full(self.n_parents, -1, dtype=np.int64)
            for row, entry in enumerate(entries):
                if entry.get("kind") != "chunk":
                    self._parent_row[int(entry["parent_id"])] = row
            self._parent_counts = np.bincount(parent_of,
                                              minlength=self.n_parents)

    def __len__(self):
        return int(self._offsets[-1])

    # -- scoring -------------------------------------------------------------
    def _as_queries(self, vectors):
        """Unit float32 query batch, validated against the store width."""
        queries = np.asarray(vectors, dtype=np.float64)
        if queries.size == 0:
            # Any empty input (including a plain []) is an empty batch,
            # not a shape error.
            return np.empty((0, self.hidden), dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None]
        if queries.ndim != 2 or queries.shape[1] != self.hidden:
            raise IndexStoreError(
                f"query vectors have shape {queries.shape}, expected "
                f"(n, {self.hidden})")
        norms = np.linalg.norm(queries, axis=1, keepdims=True)
        unit = queries / np.maximum(norms, 1e-12)
        return np.ascontiguousarray(unit, dtype=np.float32)

    def _exact_scores(self, queries):
        """(n_queries, corpus) float32 scores, one gemm per shard."""
        # Pad 1-row batches to 2: BLAS then uses the same gemm kernel for
        # every batch size, keeping single and batched scores bit-equal.
        padded = queries
        if len(queries) == 1:
            padded = np.concatenate([queries, np.zeros_like(queries)])
        parts = [padded @ np.asarray(block).T for block in self._blocks]
        scores = parts[0] if len(parts) == 1 else np.concatenate(parts,
                                                                 axis=1)
        return scores[:len(queries)]

    def gather(self, rows):
        """Stored rows by global id, crossing shard boundaries."""
        rows = np.asarray(rows, dtype=np.int64)
        if len(self._blocks) == 1:
            return np.asarray(self._blocks[0])[rows]
        out = np.empty((len(rows), self.hidden), dtype=np.float32)
        shard = np.searchsorted(self._offsets, rows, side="right") - 1
        for index, block in enumerate(self._blocks):
            mask = shard == index
            if mask.any():
                out[mask] = np.asarray(block)[rows[mask]
                                              - self._offsets[index]]
        return out

    def _block_maxima(self, scores):
        """Per-row maxima over _BLOCK-wide segments, one vectorized pass
        for the whole batch (the remainder segment becomes a last,
        shorter block)."""
        q, n = scores.shape
        whole = n // _BLOCK
        maxima = scores[:, :whole * _BLOCK].reshape(q, whole,
                                                    _BLOCK).max(axis=2)
        if whole * _BLOCK < n:
            tail = scores[:, whole * _BLOCK:].max(axis=1, keepdims=True)
            maxima = np.concatenate([maxima, tail], axis=1)
        return maxima

    def _block_candidates(self, row, maxima, kk):
        """Exact top-kk of one row via its kk best blocks.

        A block holding a top-kk element has a maximum at least that
        large, so the kk best blocks by maximum always cover the top-kk
        set; only their ~kk*_BLOCK members get partitioned.
        """
        n = len(self)
        nblk = maxima.shape[0]
        t = min(kk, nblk)
        blocks = np.argpartition(maxima, nblk - t)[nblk - t:]
        cand = np.concatenate(
            [np.arange(b * _BLOCK, min((b + 1) * _BLOCK, n),
                       dtype=np.int64) for b in blocks])
        vals = row[cand]
        keep = np.argpartition(vals, len(vals) - kk)[len(vals) - kk:]
        return cand[keep]

    @staticmethod
    def _top_sel(scores, row_ids, k):
        """Positions of the best-k scores, ties toward lower row id.

        ``argpartition`` is O(n); only the ``k`` survivors get sorted —
        no full argsort of the corpus per query.
        """
        k = min(max(int(k), 0), len(row_ids))
        if k == 0:
            return np.empty(0, dtype=np.int64)
        pos = np.arange(len(row_ids), dtype=np.int64)
        if k < len(row_ids):
            pos = np.argpartition(-scores, k - 1)[:k]
        order = np.lexsort((row_ids[pos], -scores[pos]))
        return pos[order]

    # -- queries -------------------------------------------------------------
    def query_many(self, vectors, k=5, delta=0.0, nprobe=None,
                   exact=False):
        """Top-k hit lists for a batch of query vectors, in input order.

        Args:
            vectors: ``(n, hidden)`` array-like (or one 1-D vector).
            k: hits per query.
            delta: piracy decision threshold on the cosine score.
            nprobe: IVF clusters to probe; ``None`` means the
                quantizer's default (:data:`repro.index.ann.DEFAULT_NPROBE`).
            exact: bypass the IVF pre-filter and score every stored row.
        """
        if not len(self):
            raise IndexStoreError("the fingerprint index is empty")
        queries = self._as_queries(vectors)
        if not len(queries):
            return []
        if self.chunked:
            # Each vector is a single-part group; aggregation reduces
            # the chunk rows back to one ranked list of parent designs.
            offsets = np.arange(len(queries) + 1, dtype=np.int64)
            return self._grouped(queries, offsets, [None] * len(queries),
                                 k, delta, nprobe, exact)
        if exact or self.ivf is None:
            scores = self._exact_scores(queries)
            n = len(self)
            kk = min(max(int(k), 0), n)
            if kk == 0:
                return [[] for _ in range(len(queries))]
            # Two-stage selection pays off once the corpus dwarfs the
            # candidate pool; tiny corpora partition directly.
            blocked = n >= 4 * _BLOCK and 2 * (kk + 1) * _BLOCK <= n
            blockmax = self._block_maxima(scores) if blocked else None
            results = []
            for i in range(len(queries)):
                row = scores[i]
                if blocked:
                    cand = self._block_candidates(row, blockmax[i], kk)
                elif kk < n:
                    # Ascending argpartition + tail slice: top-k in O(n)
                    # without negating (copying) the score row.
                    cand = np.argpartition(row, n - kk)[n - kk:]
                else:
                    cand = np.arange(n, dtype=np.int64)
                order = np.lexsort((cand, -row[cand]))
                sel = cand[order]
                results.append(self._hits(sel, row[sel], delta))
            return results
        cand_rows, offsets = self.ivf.probe(queries, nprobe)
        gathered = self.gather(cand_rows)
        owner = np.repeat(np.arange(len(queries)), np.diff(offsets))
        cand_scores = np.einsum("ij,ij->i", gathered, queries[owner])
        results = []
        for i in range(len(queries)):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            rows, scores = cand_rows[lo:hi], cand_scores[lo:hi]
            sel = self._top_sel(scores, rows, k)
            results.append(self._hits(rows[sel], scores[sel], delta))
        return results

    def query_groups(self, parts, offsets, regions=None, k=5, delta=0.0,
                     nprobe=None, exact=False, struct=None):
        """Ranked parent designs for groups of query parts.

        Args:
            parts: ``(P, hidden)`` array-like of part vectors for all
                groups, concatenated in group order (each group is one
                suspect: its whole-design vector plus its chunk
                vectors, see ``FingerprintIndex.suspect_parts``).
            offsets: ``len(groups) + 1`` prefix offsets into ``parts``.
            regions: per-part region descriptors aligned with ``parts``
                (``None`` entries mean "the whole suspect").
            k: parent designs per group.
            struct: optional per-group structural score vectors (one
                float per parent design, see
                :meth:`repro.index.wlsig.SignatureScorer.scores`) —
                ``None`` entries keep that group on pure embedding
                ranking.  Groups with scores are ranked by fused
                channel rank (see the module docstring).

        Returns:
            One :class:`QueryHit` list per group — at most ``k`` parent
            designs; without fusion, ranked by best part-vs-row score,
            ties broken by higher coverage, then lower parent id.
        """
        if not len(self):
            raise IndexStoreError("the fingerprint index is empty")
        queries = self._as_queries(parts)
        offsets = np.asarray(offsets, dtype=np.int64)
        if (len(offsets) < 1 or offsets[0] != 0
                or offsets[-1] != len(queries)
                or np.any(np.diff(offsets) < 0)):
            raise IndexStoreError(
                f"part offsets {offsets.tolist()} do not partition "
                f"{len(queries)} query parts")
        if regions is None:
            regions = [None] * len(queries)
        if struct is not None and len(struct) != len(offsets) - 1:
            raise IndexStoreError(
                f"{len(struct)} structural score vectors for "
                f"{len(offsets) - 1} query groups")
        if len(offsets) == 1:
            return []
        return self._grouped(queries, offsets, regions, k, delta, nprobe,
                             exact, struct=struct)

    def _parent_arrays(self):
        """(parent_of, parent_row, parent_counts) — on a chunk-less
        engine every row is its own parent, so grouped queries degrade
        to plain per-row ranking."""
        if self.chunked:
            return self._parent_of, self._parent_row, self._parent_counts
        rows = np.arange(len(self), dtype=np.int64)
        return rows, rows, np.ones(len(self), dtype=np.int64)

    def _grouped(self, queries, offsets, regions, k, delta, nprobe,
                 exact, struct=None):
        """Aggregated scoring shared by query_groups and chunked
        query_many (queries are already validated unit float32)."""
        groups = len(offsets) - 1
        if struct is not None and any(s is not None for s in struct):
            # Fused queries score exactly (see the module docstring):
            # the structural channel ranks every parent, so pruning the
            # embedding channel's candidates would only desynchronize
            # the two rank lists.
            scores = self._exact_scores(queries)
            all_rows = np.arange(len(self), dtype=np.int64)
            results = []
            for g in range(groups):
                lo, hi = int(offsets[g]), int(offsets[g + 1])
                if hi == lo:
                    results.append([])
                    continue
                block = scores[lo:hi]
                if struct[g] is None:
                    results.append(self._aggregate(
                        all_rows, block.max(axis=0),
                        block.argmax(axis=0), regions[lo:hi], k, delta))
                else:
                    results.append(self._aggregate_fused(
                        block, regions[lo:hi], struct[g], k, delta))
            return results
        if exact or self.ivf is None:
            scores = self._exact_scores(queries)
            all_rows = np.arange(len(self), dtype=np.int64)
            results = []
            for g in range(groups):
                lo, hi = int(offsets[g]), int(offsets[g + 1])
                if hi == lo:
                    results.append([])
                    continue
                block = scores[lo:hi]
                results.append(self._aggregate(
                    all_rows, block.max(axis=0), block.argmax(axis=0),
                    regions[lo:hi], k, delta))
            return results
        cand_rows, part_offsets = self.ivf.probe(queries, nprobe)
        results = []
        for g in range(groups):
            lo, hi = int(offsets[g]), int(offsets[g + 1])
            rows = np.unique(
                cand_rows[int(part_offsets[lo]):int(part_offsets[hi])])
            if not len(rows):
                results.append([])
                continue
            block = self.gather(rows) @ queries[lo:hi].T
            results.append(self._aggregate(
                rows, block.max(axis=1), block.argmax(axis=1),
                regions[lo:hi], k, delta))
        return results

    def _aggregate(self, rows, row_best, row_part, group_regions, k,
                   delta):
        """One group's hits: reduce per-row best scores to per-parent
        block maxima, rank parents score desc / coverage desc / id asc.

        Args:
            rows: candidate global row ids (ascending).
            row_best: best score over the group's parts, per candidate.
            row_part: which part produced it, per candidate.
            group_regions: the group's part region descriptors.
        """
        parent_of, parent_row, parent_counts = self._parent_arrays()
        parents = parent_of[rows]
        uniq, inverse = np.unique(parents, return_inverse=True)
        best = np.full(len(uniq), -np.inf, dtype=np.float64)
        np.maximum.at(best, inverse, row_best)
        # Lowest candidate position attaining each parent's maximum:
        # deterministic tie-break toward the lower global row id.
        at_max = row_best >= best[inverse]
        pos_best = np.full(len(uniq), len(rows), dtype=np.int64)
        np.minimum.at(pos_best, inverse[at_max], np.nonzero(at_max)[0])
        above = np.bincount(inverse[row_best > delta], minlength=len(uniq))
        coverage = above / np.maximum(parent_counts[uniq], 1)
        kk = min(max(int(k), 0), len(uniq))
        if kk == 0:
            return []
        sel = np.arange(len(uniq), dtype=np.int64)
        if kk < len(uniq):
            sel = np.argpartition(-best, kk - 1)[:kk]
        order = np.lexsort((uniq[sel], -coverage[sel], -best[sel]))
        sel = sel[order]
        hits = []
        for u in sel.tolist():
            row = int(rows[pos_best[u]])
            row_entry = self._entries[row]
            parent_entry = self._entries[int(parent_row[uniq[u]])]
            score = float(best[u])
            hits.append(QueryHit(
                name=parent_entry["name"], path=parent_entry["path"],
                design=parent_entry["design"], score=score,
                is_piracy=bool(score > delta),
                via=("chunk" if row_entry.get("kind") == "chunk"
                     else "design"),
                region=row_entry.get("region"),
                query_region=group_regions[int(row_part[pos_best[u]])],
                coverage=float(coverage[u])))
        return hits

    @staticmethod
    def _channel_ranks(channel):
        """0-based descending rank per parent, stable toward lower id."""
        order = np.argsort(-channel, kind="stable")
        ranks = np.empty(len(channel), dtype=np.int64)
        ranks[order] = np.arange(len(channel), dtype=np.int64)
        return ranks

    def _aggregate_fused(self, block, group_regions, struct, k, delta):
        """One group's hits under structural rank fusion.

        Two independent channels rank every parent design, and a parent
        keeps the *better* of its two ranks:

        - **embedding** — best cosine between the suspect's chunk parts
          and stored chunk rows (falling back to the whole suspect on a
          suspect too small to chunk, and to whole-design rows on a
          chunk-less index);
        - **structural** — the caller-supplied reverse-containment
          scores (:mod:`repro.index.wlsig`).

        The minimum-rank fusion lets either channel carry a scenario
        the other is blind to: chunk cosines rescue grafts whose WL
        colors were destroyed at the graft boundary, containment
        rescues grafts the saturated chunk-embedding space cannot
        separate.  Reported scores are whole-vs-whole cosines (the
        delta-comparable pairing); evidence fields keep describing the
        best raw (part, row) pair.

        Args:
            block: ``(parts, all rows)`` score matrix for this group,
                whole-suspect part first.
            group_regions: the group's part region descriptors.
            struct: structural score per parent design.
        """
        parent_of, parent_row, parent_counts = self._parent_arrays()
        n_parents = len(parent_row)
        struct = np.asarray(struct, dtype=np.float64)
        if struct.shape != (n_parents,):
            raise IndexStoreError(
                f"structural scores have shape {struct.shape}, expected "
                f"({n_parents},)")
        chunk_parts = [i for i, region in enumerate(group_regions)
                       if region is not None] or [0]
        if self.chunked:
            embed_rows = np.where(self._is_chunk,
                                  block[chunk_parts].max(axis=0), -np.inf)
        else:
            embed_rows = block[0]
        embed = np.full(n_parents, -np.inf)
        np.maximum.at(embed, parent_of, embed_rows)
        fused = np.minimum(self._channel_ranks(embed),
                           self._channel_ranks(struct))
        kk = min(max(int(k), 0), n_parents)
        if kk == 0:
            return []
        sel = np.lexsort((np.arange(n_parents, dtype=np.int64),
                          fused))[:kk]
        # Locality evidence over the raw (part, row) matrix, same
        # conventions as _aggregate.
        row_best = block.max(axis=0)
        row_part = block.argmax(axis=0)
        best = np.full(n_parents, -np.inf)
        np.maximum.at(best, parent_of, row_best)
        at_max = row_best >= best[parent_of]
        pos_best = np.full(n_parents, len(row_best), dtype=np.int64)
        np.minimum.at(pos_best, parent_of[at_max], np.nonzero(at_max)[0])
        above = np.bincount(parent_of[row_best > delta],
                            minlength=n_parents)
        coverage = above / np.maximum(parent_counts, 1)
        hits = []
        for u in sel.tolist():
            design_row = int(parent_row[u])
            score = float(block[0, design_row])
            row_entry = self._entries[int(pos_best[u])]
            parent_entry = self._entries[design_row]
            hits.append(QueryHit(
                name=parent_entry["name"], path=parent_entry["path"],
                design=parent_entry["design"], score=score,
                is_piracy=bool(score > delta),
                via=("chunk" if row_entry.get("kind") == "chunk"
                     else "design"),
                region=row_entry.get("region"),
                query_region=group_regions[int(row_part[pos_best[u]])],
                coverage=float(coverage[u])))
        return hits

    def _hits(self, rows, scores, delta):
        """Hit objects for ranked rows with their (rank-aligned) scores."""
        hits = []
        for rank, row in enumerate(rows.tolist()):
            score = float(scores[rank])
            entry = self._entries[row]
            hits.append(QueryHit(name=entry["name"], path=entry["path"],
                                 design=entry["design"], score=score,
                                 is_piracy=bool(score > delta)))
        return hits
