"""Batched sublinear query serving over the memory-mapped shard store.

One :class:`QueryEngine` turns the stored corpus into a lookup service:

- **Batched scoring** — ``query_many`` scores a whole batch of suspects
  against every shard with one BLAS matmul per shard, instead of one
  pass per suspect.  Single-row batches are padded to two rows before
  the matmul so BLAS always takes the same gemm kernel: a lone
  ``query_vector`` call is **bit-identical** to the same vector inside
  any batch (OpenBLAS routes 1-row gemms to a differently-rounded
  kernel otherwise).
- **Partial top-k** — ranks come from ``argpartition`` (O(n)) plus a
  sort of only ``k`` candidates, not a full ``argsort`` of the corpus;
  large corpora first reduce each row to its best score blocks.  The
  returned hits order ties toward the lower row id; *which* of several
  boundary-tied rows enters the top-k is deterministic for a given
  corpus but unspecified (the price of partial selection).
- **IVF pre-filter** — with a fitted :class:`~repro.index.ann.IVFIndex`,
  only the rows in the ``nprobe`` best clusters are gathered and scored
  (exact dot products, so scores are never approximated — only the
  candidate pool is).  ``exact=True`` is the escape hatch that bypasses
  the quantizer entirely.
"""

from dataclasses import dataclass

import numpy as np

from repro.errors import IndexStoreError

#: Row-segment width for two-stage exact top-k: block maxima are reduced
#: for the whole batch in one vectorized pass, then each row only
#: partitions the ~k*_BLOCK candidates from its best blocks instead of
#: the full corpus (the top-k elements of a row always live in its top-k
#: blocks by max).
_BLOCK = 1024


@dataclass
class QueryHit:
    """One ranked index entry for a query design."""

    name: str
    path: str
    design: str
    score: float
    is_piracy: bool


class QueryEngine:
    """Score query vectors against the stored (unit float32) corpus.

    Args:
        blocks: per-shard ``(rows, hidden)`` float32 arrays or memmaps,
            in global row order (``ShardStore.blocks()``).  The engine is
            deliberately storage-agnostic — it sees plain row blocks, so
            tests and benchmarks feed in-memory arrays while production
            feeds memmaps — and therefore keeps its own row-offset table
            rather than depending on :class:`ShardStore`.
        entries: the ok index entries, one per stored row, in row order.
        ivf: optional fitted :class:`~repro.index.ann.IVFIndex` over the
            same rows.
    """

    def __init__(self, blocks, entries, ivf=None):
        self._blocks = list(blocks)
        self._entries = entries
        self.ivf = ivf
        self._offsets = np.concatenate(
            ([0], np.cumsum([len(b) for b in self._blocks]))
        ).astype(np.int64)
        self.hidden = (int(self._blocks[0].shape[1]) if self._blocks
                       else 0)

    def __len__(self):
        return int(self._offsets[-1])

    # -- scoring -------------------------------------------------------------
    def _as_queries(self, vectors):
        """Unit float32 query batch, validated against the store width."""
        queries = np.asarray(vectors, dtype=np.float64)
        if queries.size == 0:
            # Any empty input (including a plain []) is an empty batch,
            # not a shape error.
            return np.empty((0, self.hidden), dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None]
        if queries.ndim != 2 or queries.shape[1] != self.hidden:
            raise IndexStoreError(
                f"query vectors have shape {queries.shape}, expected "
                f"(n, {self.hidden})")
        norms = np.linalg.norm(queries, axis=1, keepdims=True)
        unit = queries / np.maximum(norms, 1e-12)
        return np.ascontiguousarray(unit, dtype=np.float32)

    def _exact_scores(self, queries):
        """(n_queries, corpus) float32 scores, one gemm per shard."""
        # Pad 1-row batches to 2: BLAS then uses the same gemm kernel for
        # every batch size, keeping single and batched scores bit-equal.
        padded = queries
        if len(queries) == 1:
            padded = np.concatenate([queries, np.zeros_like(queries)])
        parts = [padded @ np.asarray(block).T for block in self._blocks]
        scores = parts[0] if len(parts) == 1 else np.concatenate(parts,
                                                                 axis=1)
        return scores[:len(queries)]

    def gather(self, rows):
        """Stored rows by global id, crossing shard boundaries."""
        rows = np.asarray(rows, dtype=np.int64)
        if len(self._blocks) == 1:
            return np.asarray(self._blocks[0])[rows]
        out = np.empty((len(rows), self.hidden), dtype=np.float32)
        shard = np.searchsorted(self._offsets, rows, side="right") - 1
        for index, block in enumerate(self._blocks):
            mask = shard == index
            if mask.any():
                out[mask] = np.asarray(block)[rows[mask]
                                              - self._offsets[index]]
        return out

    def _block_maxima(self, scores):
        """Per-row maxima over _BLOCK-wide segments, one vectorized pass
        for the whole batch (the remainder segment becomes a last,
        shorter block)."""
        q, n = scores.shape
        whole = n // _BLOCK
        maxima = scores[:, :whole * _BLOCK].reshape(q, whole,
                                                    _BLOCK).max(axis=2)
        if whole * _BLOCK < n:
            tail = scores[:, whole * _BLOCK:].max(axis=1, keepdims=True)
            maxima = np.concatenate([maxima, tail], axis=1)
        return maxima

    def _block_candidates(self, row, maxima, kk):
        """Exact top-kk of one row via its kk best blocks.

        A block holding a top-kk element has a maximum at least that
        large, so the kk best blocks by maximum always cover the top-kk
        set; only their ~kk*_BLOCK members get partitioned.
        """
        n = len(self)
        nblk = maxima.shape[0]
        t = min(kk, nblk)
        blocks = np.argpartition(maxima, nblk - t)[nblk - t:]
        cand = np.concatenate(
            [np.arange(b * _BLOCK, min((b + 1) * _BLOCK, n),
                       dtype=np.int64) for b in blocks])
        vals = row[cand]
        keep = np.argpartition(vals, len(vals) - kk)[len(vals) - kk:]
        return cand[keep]

    @staticmethod
    def _top_sel(scores, row_ids, k):
        """Positions of the best-k scores, ties toward lower row id.

        ``argpartition`` is O(n); only the ``k`` survivors get sorted —
        no full argsort of the corpus per query.
        """
        k = min(max(int(k), 0), len(row_ids))
        if k == 0:
            return np.empty(0, dtype=np.int64)
        pos = np.arange(len(row_ids), dtype=np.int64)
        if k < len(row_ids):
            pos = np.argpartition(-scores, k - 1)[:k]
        order = np.lexsort((row_ids[pos], -scores[pos]))
        return pos[order]

    # -- queries -------------------------------------------------------------
    def query_many(self, vectors, k=5, delta=0.0, nprobe=None,
                   exact=False):
        """Top-k hit lists for a batch of query vectors, in input order.

        Args:
            vectors: ``(n, hidden)`` array-like (or one 1-D vector).
            k: hits per query.
            delta: piracy decision threshold on the cosine score.
            nprobe: IVF clusters to probe; ``None`` means the
                quantizer's default (:data:`repro.index.ann.DEFAULT_NPROBE`).
            exact: bypass the IVF pre-filter and score every stored row.
        """
        if not len(self):
            raise IndexStoreError("the fingerprint index is empty")
        queries = self._as_queries(vectors)
        if not len(queries):
            return []
        if exact or self.ivf is None:
            scores = self._exact_scores(queries)
            n = len(self)
            kk = min(max(int(k), 0), n)
            if kk == 0:
                return [[] for _ in range(len(queries))]
            # Two-stage selection pays off once the corpus dwarfs the
            # candidate pool; tiny corpora partition directly.
            blocked = n >= 4 * _BLOCK and 2 * (kk + 1) * _BLOCK <= n
            blockmax = self._block_maxima(scores) if blocked else None
            results = []
            for i in range(len(queries)):
                row = scores[i]
                if blocked:
                    cand = self._block_candidates(row, blockmax[i], kk)
                elif kk < n:
                    # Ascending argpartition + tail slice: top-k in O(n)
                    # without negating (copying) the score row.
                    cand = np.argpartition(row, n - kk)[n - kk:]
                else:
                    cand = np.arange(n, dtype=np.int64)
                order = np.lexsort((cand, -row[cand]))
                sel = cand[order]
                results.append(self._hits(sel, row[sel], delta))
            return results
        cand_rows, offsets = self.ivf.probe(queries, nprobe)
        gathered = self.gather(cand_rows)
        owner = np.repeat(np.arange(len(queries)), np.diff(offsets))
        cand_scores = np.einsum("ij,ij->i", gathered, queries[owner])
        results = []
        for i in range(len(queries)):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            rows, scores = cand_rows[lo:hi], cand_scores[lo:hi]
            sel = self._top_sel(scores, rows, k)
            results.append(self._hits(rows[sel], scores[sel], delta))
        return results

    def _hits(self, rows, scores, delta):
        """Hit objects for ranked rows with their (rank-aligned) scores."""
        hits = []
        for rank, row in enumerate(rows.tolist()):
            score = float(scores[rank])
            entry = self._entries[row]
            hits.append(QueryHit(name=entry["name"], path=entry["path"],
                                 design=entry["design"], score=score,
                                 is_piracy=bool(score > delta)))
        return hits
