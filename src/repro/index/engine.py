"""Batched sublinear query serving over the memory-mapped shard store.

One :class:`QueryEngine` turns the stored corpus into a lookup service:

- **Batched scoring** — ``query_many`` scores a whole batch of suspects
  against every shard with one BLAS matmul per shard, instead of one
  pass per suspect.  Single-row batches are padded to two rows before
  the matmul so BLAS always takes the same gemm kernel: a lone
  ``query_vector`` call is **bit-identical** to the same vector inside
  any batch (OpenBLAS routes 1-row gemms to a differently-rounded
  kernel otherwise).
- **Partial top-k** — ranks come from ``argpartition`` (O(n)) plus a
  sort of only ``k`` candidates, not a full ``argsort`` of the corpus;
  large corpora first reduce each row to its best score blocks.  Ties
  order toward the lower row id *including* at the top-k boundary: when
  the k-th score is tied, the tied rows with the lowest ids enter
  (partial selection pays one extra vectorized comparison pass to
  resolve the boundary, so partitioned and single-process serving pick
  identical survivors).
- **IVF pre-filter** — with a fitted :class:`~repro.index.ann.IVFIndex`,
  only the rows in the ``nprobe`` best clusters are gathered and scored
  (exact dot products, so scores are never approximated — only the
  candidate pool is).  ``exact=True`` is the escape hatch that bypasses
  the quantizer entirely.
- **Chunk aggregation** — a v4 index stores extra rows for subgraph
  chunks (:mod:`repro.index.chunks`), each carrying a parent-design
  back-pointer.  ``query_groups`` scores a *group* of query parts (the
  whole suspect plus its own chunks) against every stored row, reduces
  to one score per parent design (block maximum over the part x row
  score matrix), and ranks parents by best score, then coverage (the
  fraction of the parent's rows above ``delta``), then id.  Hits carry
  the matching evidence: which stored region matched (``region``),
  which suspect region matched it (``query_region``), and the coverage.
  An index without chunk rows never enters this path — ``query_many``
  on it is bit-identical to v3 serving.
- **Structural rank fusion** — when the caller also supplies per-group
  structural scores (:mod:`repro.index.wlsig` reverse-containment, one
  score per parent design), parents are ranked by the *better of their
  two channel ranks*: the embedding channel (suspect chunks vs stored
  chunk rows) finds regions the encoder separates, the structural
  channel finds regions it cannot.  The reported ``score`` then becomes
  the delta-comparable whole-suspect vs whole-design cosine — chunk
  cosines live in a saturated region of the embedding space and must
  not be compared against the decision boundary — while ``via`` /
  ``region`` / ``query_region`` / ``coverage`` keep describing the best
  raw (part, row) pairing as locality evidence.  Fused queries always
  score exactly: the structural channel visits every stored design
  anyway, so the IVF shortcut buys nothing there.
- **Partition-aware partial queries** — multi-worker serving splits the
  corpus by whole shard files
  (:func:`repro.index.shards.assign_partitions`) and has each worker
  call :meth:`partial_many` / :meth:`partial_groups` over its own
  subset.  Because exact scoring is one gemm *per shard* (and
  IVF/grouped candidate scores are per-row dot products), a row's score
  never depends on which partition scored it, and the partials are
  mergeable: :meth:`merge_many` / :meth:`merge_groups` reduce them to
  hit lists **bit-identical** to the single-process query on the full
  engine.  The structural fusion channel is deliberately *not* computed
  in partials — it ranks every stored design globally, so the caller
  (the serving front) supplies ``struct`` to :meth:`merge_groups` and
  fusion happens once, after the merge ("fuse at the front").

Every ranking boundary breaks score ties deterministically (lower row /
parent id wins, after the documented secondary keys), so partitioned and
single-process serving agree even on corpora with duplicate designs —
exact ties are real there, because duplicate content keys reuse the
stored vector bit-for-bit.
"""

from dataclasses import dataclass

import numpy as np

from repro.errors import IndexStoreError

#: Row-segment width for two-stage exact top-k: block maxima are reduced
#: for the whole batch in one vectorized pass, then each row only
#: partitions the ~k*_BLOCK candidates from its best blocks instead of
#: the full corpus (the top-k elements of a row always live in its top-k
#: blocks by max).
_BLOCK = 1024


@dataclass
class QueryHit:
    """One ranked index entry for a query design.

    The last four fields are locality evidence from chunk aggregation
    (:meth:`QueryEngine.query_groups`); they keep their defaults on a
    chunk-less index, so v3-style consumers never see them change.

    Attributes:
        via: ``"design"`` when the whole-design row scored best,
            ``"chunk"`` when a stored subgraph chunk did.
        region: stored region descriptor of the best-matching chunk row
            (``None`` for whole-design matches).
        query_region: region descriptor of the suspect part that
            produced the best score (``None`` for the whole suspect).
        coverage: fraction of the design's stored rows scoring above
            delta for this query (``None`` outside chunk aggregation).

    Under structural rank fusion ``score`` is always the whole-suspect
    vs whole-design cosine (the only pairing comparable to ``delta``),
    even when a chunk pairing is the evidence ``via`` points at; the
    design's structural reverse-containment score rides along in
    ``struct`` (``None`` outside fusion) as calibration evidence.
    """

    name: str
    path: str
    design: str
    score: float
    is_piracy: bool
    via: str = "design"
    region: dict = None
    query_region: dict = None
    coverage: float = None
    struct: float = None


@dataclass
class PartialTopK:
    """One query's partition-local top-k (mergeable).

    Produced by :meth:`QueryEngine.partial_many`; disjoint partitions'
    partials merge via :meth:`QueryEngine.merge_many` into hit lists
    bit-identical to the single-process query.

    Attributes:
        rows: global row ids, ranked under ``(-score, row id)``.
        scores: exact cosine scores aligned with ``rows``.
    """

    rows: np.ndarray
    scores: np.ndarray


@dataclass
class PartialGroups:
    """One group's partition-local per-parent reduction (mergeable).

    Produced by :meth:`QueryEngine.partial_groups`; merged by
    :meth:`QueryEngine.merge_groups`.  All arrays align with
    ``parents`` (candidate parent ids, ascending).  ``embed`` and
    ``design`` are only attached by fused partials; ``design`` is NaN
    unless this partition owns the parent's whole-design row.

    Attributes:
        parents: parent design ids with at least one scored row here.
        best: best (part, row) cosine per parent.
        best_row: lowest global row id attaining ``best``.
        best_part: query part index that produced ``best`` there.
        above: rows of the parent scoring above delta in this
            partition (coverage numerator; the denominator is global).
        embed: embedding-channel score per parent (fused only).
        design: whole-suspect vs whole-design cosine (fused only).
    """

    parents: np.ndarray
    best: np.ndarray
    best_row: np.ndarray
    best_part: np.ndarray
    above: np.ndarray
    embed: np.ndarray = None
    design: np.ndarray = None


class QueryEngine:
    """Score query vectors against the stored (unit float32) corpus.

    Args:
        blocks: per-shard ``(rows, hidden)`` float32 arrays or memmaps,
            in global row order (``ShardStore.blocks()``).  The engine is
            deliberately storage-agnostic — it sees plain row blocks, so
            tests and benchmarks feed in-memory arrays while production
            feeds memmaps — and therefore keeps its own row-offset table
            rather than depending on :class:`ShardStore`.
        entries: the ok index entries, one per stored row, in row order.
        ivf: optional fitted :class:`~repro.index.ann.IVFIndex` over the
            same rows.
    """

    def __init__(self, blocks, entries, ivf=None):
        self._blocks = list(blocks)
        self._entries = entries
        self.ivf = ivf
        self._offsets = np.concatenate(
            ([0], np.cumsum([len(b) for b in self._blocks]))
        ).astype(np.int64)
        self.hidden = (int(self._blocks[0].shape[1]) if self._blocks
                       else 0)
        #: True when any stored row is a subgraph chunk; plain designs
        #: keep the legacy (bit-identical) scoring paths.
        self.chunked = any(e.get("kind") == "chunk" for e in entries)
        self._is_chunk = np.array([e.get("kind") == "chunk"
                                   for e in entries], dtype=bool)
        if self.chunked:
            parent_of = np.array([int(e["parent_id"]) for e in entries],
                                 dtype=np.int64)
            self._parent_of = parent_of
            self.n_parents = int(parent_of.max()) + 1 if len(parent_of) \
                else 0
            self._parent_row = np.full(self.n_parents, -1, dtype=np.int64)
            for row, entry in enumerate(entries):
                if entry.get("kind") != "chunk":
                    self._parent_row[int(entry["parent_id"])] = row
            self._parent_counts = np.bincount(parent_of,
                                              minlength=self.n_parents)

    def __len__(self):
        return int(self._offsets[-1])

    # -- scoring -------------------------------------------------------------
    def _as_queries(self, vectors):
        """Unit float32 query batch, validated against the store width."""
        queries = np.asarray(vectors, dtype=np.float64)
        if queries.size == 0:
            # Any empty input (including a plain []) is an empty batch,
            # not a shape error.
            return np.empty((0, self.hidden), dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[None]
        if queries.ndim != 2 or queries.shape[1] != self.hidden:
            raise IndexStoreError(
                f"query vectors have shape {queries.shape}, expected "
                f"(n, {self.hidden})")
        norms = np.linalg.norm(queries, axis=1, keepdims=True)
        unit = queries / np.maximum(norms, 1e-12)
        return np.ascontiguousarray(unit, dtype=np.float32)

    def _exact_scores(self, queries):
        """(n_queries, corpus) float32 scores, one gemm per shard."""
        # Pad 1-row batches to 2: BLAS then uses the same gemm kernel for
        # every batch size, keeping single and batched scores bit-equal.
        padded = queries
        if len(queries) == 1:
            padded = np.concatenate([queries, np.zeros_like(queries)])
        parts = [padded @ np.asarray(block).T for block in self._blocks]
        scores = parts[0] if len(parts) == 1 else np.concatenate(parts,
                                                                 axis=1)
        return scores[:len(queries)]

    def gather(self, rows):
        """Stored rows by global id, crossing shard boundaries."""
        rows = np.asarray(rows, dtype=np.int64)
        if len(self._blocks) == 1:
            return np.asarray(self._blocks[0])[rows]
        out = np.empty((len(rows), self.hidden), dtype=np.float32)
        shard = np.searchsorted(self._offsets, rows, side="right") - 1
        for index, block in enumerate(self._blocks):
            mask = shard == index
            if mask.any():
                out[mask] = np.asarray(block)[rows[mask]
                                              - self._offsets[index]]
        return out

    def _block_maxima(self, scores):
        """Per-row maxima over _BLOCK-wide segments, one vectorized pass
        for the whole batch (the remainder segment becomes a last,
        shorter block)."""
        q, n = scores.shape
        whole = n // _BLOCK
        maxima = scores[:, :whole * _BLOCK].reshape(q, whole,
                                                    _BLOCK).max(axis=2)
        if whole * _BLOCK < n:
            tail = scores[:, whole * _BLOCK:].max(axis=1, keepdims=True)
            maxima = np.concatenate([maxima, tail], axis=1)
        return maxima

    def _block_candidates(self, row, maxima, kk):
        """Exact top-kk of one row via its kk best blocks.

        A block holding a top-kk element has a maximum at least that
        large, so the kk best blocks by maximum always cover the top-kk
        set; only their ~kk*_BLOCK members get partitioned.
        """
        n = len(self)
        nblk = maxima.shape[0]
        t = min(kk, nblk)
        blocks = np.argpartition(maxima, nblk - t)[nblk - t:]
        cand = np.concatenate(
            [np.arange(b * _BLOCK, min((b + 1) * _BLOCK, n),
                       dtype=np.int64) for b in blocks])
        vals = row[cand]
        keep = np.argpartition(vals, len(vals) - kk)[len(vals) - kk:]
        return cand[keep]

    @staticmethod
    def _top_sel(scores, row_ids, k):
        """Positions of the best-k scores, ties toward lower row id.

        ``argpartition`` is O(n); only the ``k`` survivors get sorted —
        no full argsort of the corpus per query.  When the k-th score is
        tied, the tied positions with the lowest row ids win (one extra
        comparison pass, only paid when a tie spans the boundary), so
        the selection is a true top-k under the total order
        ``(-score, row_id)`` — the property partition merging relies on.
        """
        k = min(max(int(k), 0), len(row_ids))
        if k == 0:
            return np.empty(0, dtype=np.int64)
        pos = np.arange(len(row_ids), dtype=np.int64)
        if k < len(row_ids):
            pos = np.argpartition(-scores, k - 1)[:k]
            boundary = scores[pos].min()
            strict = np.nonzero(scores > boundary)[0]
            tied = np.nonzero(scores == boundary)[0]
            if len(strict) + len(tied) > k:
                tied = tied[np.argsort(row_ids[tied],
                                       kind="stable")[:k - len(strict)]]
                pos = np.concatenate([strict, tied])
        order = np.lexsort((row_ids[pos], -scores[pos]))
        return pos[order]

    @staticmethod
    def _resolve_boundary(row, cand, kk):
        """Exact-path boundary ties toward lower row id.

        ``cand`` holds a top-``kk`` multiset of positions into ``row``
        (global row ids), so its minimum *is* the true kk-th largest
        score.  When that value is tied beyond the boundary, the tied
        rows with the lowest ids must win — the same total order
        ``(-score, row_id)`` that :meth:`_top_sel` enforces, so exact
        and partitioned selection agree on the survivors.
        """
        boundary = row[cand].min()
        strict = np.nonzero(row > boundary)[0]
        tied = np.nonzero(row == boundary)[0]
        if len(strict) + len(tied) > kk:
            # np.nonzero yields ascending positions: the slice keeps
            # the lowest tied row ids.
            cand = np.concatenate([strict, tied[:kk - len(strict)]])
        return cand

    # -- queries -------------------------------------------------------------
    def query_many(self, vectors, k=5, delta=0.0, nprobe=None,
                   exact=False):
        """Top-k hit lists for a batch of query vectors, in input order.

        Args:
            vectors: ``(n, hidden)`` array-like (or one 1-D vector).
            k: hits per query.
            delta: piracy decision threshold on the cosine score.
            nprobe: IVF clusters to probe; ``None`` means the
                quantizer's default (:data:`repro.index.ann.DEFAULT_NPROBE`).
            exact: bypass the IVF pre-filter and score every stored row.
        """
        if not len(self):
            raise IndexStoreError("the fingerprint index is empty")
        queries = self._as_queries(vectors)
        if not len(queries):
            return []
        if self.chunked:
            # Each vector is a single-part group; aggregation reduces
            # the chunk rows back to one ranked list of parent designs.
            offsets = np.arange(len(queries) + 1, dtype=np.int64)
            return self._grouped(queries, offsets, [None] * len(queries),
                                 k, delta, nprobe, exact)
        if exact or self.ivf is None:
            scores = self._exact_scores(queries)
            n = len(self)
            kk = min(max(int(k), 0), n)
            if kk == 0:
                return [[] for _ in range(len(queries))]
            # Two-stage selection pays off once the corpus dwarfs the
            # candidate pool; tiny corpora partition directly.
            blocked = n >= 4 * _BLOCK and 2 * (kk + 1) * _BLOCK <= n
            blockmax = self._block_maxima(scores) if blocked else None
            results = []
            for i in range(len(queries)):
                row = scores[i]
                if blocked:
                    cand = self._block_candidates(row, blockmax[i], kk)
                elif kk < n:
                    # Ascending argpartition + tail slice: top-k in O(n)
                    # without negating (copying) the score row.
                    cand = np.argpartition(row, n - kk)[n - kk:]
                else:
                    cand = np.arange(n, dtype=np.int64)
                if kk < n:
                    cand = self._resolve_boundary(row, cand, kk)
                order = np.lexsort((cand, -row[cand]))
                sel = cand[order]
                results.append(self._hits(sel, row[sel], delta))
            return results
        cand_rows, offsets = self.ivf.probe(queries, nprobe)
        gathered = self.gather(cand_rows)
        owner = np.repeat(np.arange(len(queries)), np.diff(offsets))
        cand_scores = np.einsum("ij,ij->i", gathered, queries[owner])
        results = []
        for i in range(len(queries)):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            rows, scores = cand_rows[lo:hi], cand_scores[lo:hi]
            sel = self._top_sel(scores, rows, k)
            results.append(self._hits(rows[sel], scores[sel], delta))
        return results

    def query_groups(self, parts, offsets, regions=None, k=5, delta=0.0,
                     nprobe=None, exact=False, struct=None):
        """Ranked parent designs for groups of query parts.

        Args:
            parts: ``(P, hidden)`` array-like of part vectors for all
                groups, concatenated in group order (each group is one
                suspect: its whole-design vector plus its chunk
                vectors, see ``FingerprintIndex.suspect_parts``).
            offsets: ``len(groups) + 1`` prefix offsets into ``parts``.
            regions: per-part region descriptors aligned with ``parts``
                (``None`` entries mean "the whole suspect").
            k: parent designs per group.
            struct: optional per-group structural score vectors (one
                float per parent design, see
                :meth:`repro.index.wlsig.SignatureScorer.scores`) —
                ``None`` entries keep that group on pure embedding
                ranking.  Groups with scores are ranked by fused
                channel rank (see the module docstring).

        Returns:
            One :class:`QueryHit` list per group — at most ``k`` parent
            designs; without fusion, ranked by best part-vs-row score,
            ties broken by higher coverage, then lower parent id.
        """
        if not len(self):
            raise IndexStoreError("the fingerprint index is empty")
        queries = self._as_queries(parts)
        offsets = np.asarray(offsets, dtype=np.int64)
        if (len(offsets) < 1 or offsets[0] != 0
                or offsets[-1] != len(queries)
                or np.any(np.diff(offsets) < 0)):
            raise IndexStoreError(
                f"part offsets {offsets.tolist()} do not partition "
                f"{len(queries)} query parts")
        if regions is None:
            regions = [None] * len(queries)
        if struct is not None and len(struct) != len(offsets) - 1:
            raise IndexStoreError(
                f"{len(struct)} structural score vectors for "
                f"{len(offsets) - 1} query groups")
        if len(offsets) == 1:
            return []
        return self._grouped(queries, offsets, regions, k, delta, nprobe,
                             exact, struct=struct)

    # -- partitioned queries -------------------------------------------------
    def _shard_subset(self, shards):
        """Validated ascending shard ordinals (``None`` = every shard)."""
        if shards is None:
            return list(range(len(self._blocks)))
        shards = sorted({int(s) for s in shards})
        if shards and not (0 <= shards[0]
                           and shards[-1] < len(self._blocks)):
            raise IndexStoreError(
                f"shard partition {shards} out of range for "
                f"{len(self._blocks)} shards")
        return shards

    def _partition_scores(self, queries, shards):
        """Exact scores over a shard subset + their global row ids.

        The same one-gemm-per-shard loop as :meth:`_exact_scores` (with
        the same 1-row padding), so a row's score is bit-identical
        whichever partition computes it.
        """
        padded = queries
        if len(queries) == 1:
            padded = np.concatenate([queries, np.zeros_like(queries)])
        parts = [padded @ np.asarray(self._blocks[s]).T for s in shards]
        scores = (parts[0] if len(parts) == 1
                  else np.concatenate(parts, axis=1))
        rows = np.concatenate(
            [np.arange(self._offsets[s], self._offsets[s + 1],
                       dtype=np.int64) for s in shards])
        return scores[:len(queries)], rows

    def partial_many(self, vectors, k=5, delta=0.0, nprobe=None,
                     exact=False, shards=None):
        """Partition-local partials for a batch of query vectors.

        The worker half of scatter-gather serving: scores only the rows
        in ``shards`` (ordinals into the engine's block list) and
        returns mergeable partials — one :class:`PartialTopK` per
        query, or one :class:`PartialGroups` per query on a chunked
        index (mirroring ``query_many``'s aggregation routing).  Feed
        every partition's partials to :meth:`merge_many` for hit lists
        bit-identical to ``query_many`` on the full engine.
        """
        if not len(self):
            raise IndexStoreError("the fingerprint index is empty")
        queries = self._as_queries(vectors)
        shards = self._shard_subset(shards)
        if not len(queries):
            return []
        if self.chunked:
            offsets = np.arange(len(queries) + 1, dtype=np.int64)
            return self._partial_grouped(queries, offsets,
                                         [None] * len(queries), k, delta,
                                         nprobe, exact, None, shards)
        if not shards:
            return [PartialTopK(rows=np.empty(0, dtype=np.int64),
                                scores=np.empty(0, dtype=np.float32))
                    for _ in range(len(queries))]
        if exact or self.ivf is None:
            scores, rows = self._partition_scores(queries, shards)
            out = []
            for i in range(len(queries)):
                sel = self._top_sel(scores[i], rows, k)
                out.append(PartialTopK(rows=rows[sel],
                                       scores=scores[i][sel]))
            return out
        cand_rows, offsets = self.ivf.probe(queries, nprobe)
        shard_of = np.searchsorted(self._offsets, cand_rows,
                                   side="right") - 1
        keep = np.isin(shard_of, np.asarray(shards, dtype=np.int64))
        owner = np.repeat(np.arange(len(queries)), np.diff(offsets))
        kept_rows = cand_rows[keep]
        kept_owner = owner[keep]
        gathered = self.gather(kept_rows)
        kept_scores = np.einsum("ij,ij->i", gathered, queries[kept_owner])
        counts = np.bincount(kept_owner, minlength=len(queries))
        bounds = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        out = []
        for i in range(len(queries)):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            rows_i, scores_i = kept_rows[lo:hi], kept_scores[lo:hi]
            sel = self._top_sel(scores_i, rows_i, k)
            out.append(PartialTopK(rows=rows_i[sel],
                                   scores=scores_i[sel]))
        return out

    def partial_groups(self, parts, offsets, regions=None, k=5,
                       delta=0.0, nprobe=None, exact=False, fused=None,
                       shards=None):
        """Partition-local per-parent partials for groups of parts.

        The grouped worker half of scatter-gather: same contract as
        :meth:`query_groups`, except the structural channel stays with
        the caller — ``fused`` only *flags* which groups will be fused,
        so their scoring matches the fused contract (exact, with the
        embed/design channels attached).  The structural scores
        themselves go to :meth:`merge_groups` (fuse at the front).
        """
        if not len(self):
            raise IndexStoreError("the fingerprint index is empty")
        queries = self._as_queries(parts)
        offsets = np.asarray(offsets, dtype=np.int64)
        if (len(offsets) < 1 or offsets[0] != 0
                or offsets[-1] != len(queries)
                or np.any(np.diff(offsets) < 0)):
            raise IndexStoreError(
                f"part offsets {offsets.tolist()} do not partition "
                f"{len(queries)} query parts")
        if regions is None:
            regions = [None] * len(queries)
        if fused is not None and len(fused) != len(offsets) - 1:
            raise IndexStoreError(
                f"{len(fused)} fused flags for {len(offsets) - 1} "
                f"query groups")
        if len(offsets) == 1:
            return []
        return self._partial_grouped(queries, offsets, regions, k, delta,
                                     nprobe, exact, fused,
                                     self._shard_subset(shards))

    def _partial_grouped(self, queries, offsets, regions, k, delta,
                         nprobe, exact, fused, shards):
        """Grouped partials (queries already validated unit float32)."""
        groups = len(offsets) - 1
        if fused is None:
            fused = [False] * groups

        def empty_partial(is_fused):
            empty = np.empty(0, dtype=np.int64)
            return PartialGroups(
                parents=empty, best=np.empty(0), best_row=empty,
                best_part=empty, above=empty,
                embed=np.empty(0) if is_fused else None,
                design=np.empty(0) if is_fused else None)

        if not shards:
            return [empty_partial(bool(f)) for f in fused]
        if any(fused) or exact or self.ivf is None:
            # Mirrors _grouped: one fused group forces the whole batch
            # onto exact scoring.
            scores, rows = self._partition_scores(queries, shards)
            out = []
            for g in range(groups):
                lo, hi = int(offsets[g]), int(offsets[g + 1])
                if hi == lo:
                    out.append(empty_partial(bool(fused[g])))
                    continue
                block = scores[lo:hi]
                if fused[g]:
                    out.append(self._fused_partial(block, regions[lo:hi],
                                                   rows, delta))
                    continue
                uniq, _, best, best_row, best_part, above = \
                    self._parent_partials(rows, block.max(axis=0),
                                          block.argmax(axis=0), delta)
                out.append(PartialGroups(
                    parents=uniq, best=best, best_row=best_row,
                    best_part=best_part, above=above))
            return out
        cand_rows, part_offsets = self.ivf.probe(queries, nprobe)
        shard_set = np.asarray(shards, dtype=np.int64)
        out = []
        for g in range(groups):
            lo, hi = int(offsets[g]), int(offsets[g + 1])
            rows = np.unique(
                cand_rows[int(part_offsets[lo]):int(part_offsets[hi])])
            if len(rows):
                shard_of = np.searchsorted(self._offsets, rows,
                                           side="right") - 1
                rows = rows[np.isin(shard_of, shard_set)]
            if not len(rows):
                out.append(empty_partial(False))
                continue
            block = self._gathered_block(rows, queries[lo:hi])
            uniq, _, best, best_row, best_part, above = \
                self._parent_partials(rows, block.max(axis=1),
                                      block.argmax(axis=1), delta)
            out.append(PartialGroups(parents=uniq, best=best,
                                     best_row=best_row,
                                     best_part=best_part, above=above))
        return out

    def merge_many(self, partials, k=5, delta=0.0):
        """Hit lists from per-partition ``partial_many`` results.

        Args:
            partials: one ``partial_many`` result per partition, all
                for the same query batch over disjoint shard subsets.
        """
        if not partials:
            return []
        if self.chunked:
            n = len(partials[0])
            offsets = np.arange(n + 1, dtype=np.int64)
            return self.merge_groups(partials, offsets, [None] * n,
                                     k=k, delta=delta)
        results = []
        for per_query in zip(*partials):
            rows = np.concatenate([p.rows for p in per_query])
            scores = np.concatenate([p.scores for p in per_query])
            sel = self._top_sel(scores, rows, k)
            results.append(self._hits(rows[sel], scores[sel], delta))
        return results

    def merge_groups(self, partials, offsets, regions=None, k=5,
                     delta=0.0, struct=None):
        """Hit lists from per-partition ``partial_groups`` results.

        The gather half: merges each group's per-parent partials across
        disjoint partitions, then ranks exactly like the single-process
        path.  Structural fusion happens *here* — the structural
        channel ranks every stored design globally, so it cannot be
        computed per partition; ``struct`` follows the
        :meth:`query_groups` contract (fuse at the front).

        Args:
            partials: one ``partial_groups`` result per partition, all
                for the same groups over disjoint shard subsets.
        """
        if not partials:
            return []
        groups = len(partials[0])
        if any(len(p) != groups for p in partials):
            raise IndexStoreError(
                "partition partials disagree on the query group count")
        offsets = np.asarray(offsets, dtype=np.int64)
        if regions is None:
            regions = [None] * int(offsets[-1])
        if struct is not None and len(struct) != groups:
            raise IndexStoreError(
                f"{len(struct)} structural score vectors for "
                f"{groups} query groups")
        results = []
        for g in range(groups):
            per_part = [p[g] for p in partials]
            lo, hi = int(offsets[g]), int(offsets[g + 1])
            group_regions = regions[lo:hi]
            if struct is not None and struct[g] is not None:
                if not any(len(p.parents) for p in per_part):
                    results.append([])
                    continue
                results.append(self._rank_fused(
                    self._merge_fused(per_part), group_regions,
                    struct[g], k, delta))
                continue
            uniq, best, best_row, best_part, above = \
                self._merge_parent_partials(per_part)
            results.append(self._rank_parents(
                uniq, best, best_row, best_part, above, group_regions,
                k, delta))
        return results

    def _merge_parent_partials(self, partials):
        """Sparse merged per-parent arrays from disjoint-row partials."""
        allp = np.concatenate([p.parents for p in partials])
        allbest = np.concatenate([p.best for p in partials])
        allrow = np.concatenate([p.best_row for p in partials])
        allpart = np.concatenate([p.best_part for p in partials])
        allabove = np.concatenate([p.above for p in partials])
        # Best evidence per parent under (-score, row id): order the
        # concatenated candidates and keep each parent's first.
        order = np.lexsort((allrow, -allbest, allp))
        first = np.ones(len(order), dtype=bool)
        first[1:] = allp[order][1:] != allp[order][:-1]
        pick = order[first]
        uniq = allp[pick]
        above = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(above, np.searchsorted(uniq, allp), allabove)
        return uniq, allbest[pick], allrow[pick], allpart[pick], above

    def _parent_arrays(self):
        """(parent_of, parent_row, parent_counts) — on a chunk-less
        engine every row is its own parent, so grouped queries degrade
        to plain per-row ranking."""
        if self.chunked:
            return self._parent_of, self._parent_row, self._parent_counts
        rows = np.arange(len(self), dtype=np.int64)
        return rows, rows, np.ones(len(self), dtype=np.int64)

    def _grouped(self, queries, offsets, regions, k, delta, nprobe,
                 exact, struct=None):
        """Aggregated scoring shared by query_groups and chunked
        query_many (queries are already validated unit float32)."""
        groups = len(offsets) - 1
        if struct is not None and any(s is not None for s in struct):
            # Fused queries score exactly (see the module docstring):
            # the structural channel ranks every parent, so pruning the
            # embedding channel's candidates would only desynchronize
            # the two rank lists.
            scores = self._exact_scores(queries)
            all_rows = np.arange(len(self), dtype=np.int64)
            results = []
            for g in range(groups):
                lo, hi = int(offsets[g]), int(offsets[g + 1])
                if hi == lo:
                    results.append([])
                    continue
                block = scores[lo:hi]
                if struct[g] is None:
                    results.append(self._aggregate(
                        all_rows, block.max(axis=0),
                        block.argmax(axis=0), regions[lo:hi], k, delta))
                else:
                    results.append(self._aggregate_fused(
                        block, regions[lo:hi], struct[g], k, delta))
            return results
        if exact or self.ivf is None:
            scores = self._exact_scores(queries)
            all_rows = np.arange(len(self), dtype=np.int64)
            results = []
            for g in range(groups):
                lo, hi = int(offsets[g]), int(offsets[g + 1])
                if hi == lo:
                    results.append([])
                    continue
                block = scores[lo:hi]
                results.append(self._aggregate(
                    all_rows, block.max(axis=0), block.argmax(axis=0),
                    regions[lo:hi], k, delta))
            return results
        cand_rows, part_offsets = self.ivf.probe(queries, nprobe)
        results = []
        for g in range(groups):
            lo, hi = int(offsets[g]), int(offsets[g + 1])
            rows = np.unique(
                cand_rows[int(part_offsets[lo]):int(part_offsets[hi])])
            if not len(rows):
                results.append([])
                continue
            block = self._gathered_block(rows, queries[lo:hi])
            results.append(self._aggregate(
                rows, block.max(axis=1), block.argmax(axis=1),
                regions[lo:hi], k, delta))
        return results

    def _gathered_block(self, rows, group_queries):
        """(rows, parts) exact scores for gathered candidate rows.

        ``einsum`` instead of a BLAS gemm: BLAS picks differently-
        rounded kernels by matrix shape, so a gemm'd row score would
        depend on how many neighbours the probe (or a partition
        filter) gathered alongside it.  einsum's per-cell reduction is
        shape-invariant, which is the invariant partitioned grouped
        queries rely on — and candidate blocks are small (probe-
        bounded), so BLAS would buy little here anyway.
        """
        return np.einsum("ij,kj->ik", self.gather(rows), group_queries)

    def _aggregate(self, rows, row_best, row_part, group_regions, k,
                   delta):
        """One group's hits: reduce per-row best scores to per-parent
        block maxima, rank parents score desc / coverage desc / id asc.

        Args:
            rows: candidate global row ids (ascending).
            row_best: best score over the group's parts, per candidate.
            row_part: which part produced it, per candidate.
            group_regions: the group's part region descriptors.
        """
        uniq, _, best, best_row, best_part, above = \
            self._parent_partials(rows, row_best, row_part, delta)
        return self._rank_parents(uniq, best, best_row, best_part, above,
                                  group_regions, k, delta)

    def _parent_partials(self, rows, row_best, row_part, delta):
        """Per-parent reduction of per-row best scores (sparse).

        The same reduction feeds single-process ranking and partition
        partials: each quantity merges across disjoint row sets without
        changing value (max for ``best``, lowest-row argmax for
        ``best_row``/``best_part``, sum for ``above``), which is what
        makes scatter-gather serving bit-identical.

        Returns:
            ``(uniq, inverse, best, best_row, best_part, above)`` —
            candidate parent ids (ascending), the rows->uniq inverse
            map, and aligned per-parent arrays.
        """
        parent_of = self._parent_arrays()[0]
        uniq, inverse = np.unique(parent_of[rows], return_inverse=True)
        best = np.full(len(uniq), -np.inf, dtype=np.float64)
        np.maximum.at(best, inverse, row_best)
        # Lowest candidate position attaining each parent's maximum:
        # deterministic tie-break toward the lower global row id
        # (``rows`` is ascending).
        at_max = row_best >= best[inverse]
        pos_best = np.full(len(uniq), len(rows), dtype=np.int64)
        np.minimum.at(pos_best, inverse[at_max], np.nonzero(at_max)[0])
        above = np.bincount(inverse[row_best > delta],
                            minlength=len(uniq)).astype(np.int64)
        return (uniq, inverse, best, rows[pos_best],
                np.asarray(row_part)[pos_best].astype(np.int64), above)

    def _rank_parents(self, uniq, best, best_row, best_part, above,
                      group_regions, k, delta):
        """Rank reduced parents and build hits (non-fused grouped path).

        Selection is a true top-k under the total order
        ``(-best, -coverage, parent id)``: boundary score ties are
        resolved with one extra pass, so merged partitions and the
        single-process path pick identical survivors.
        """
        parent_row, parent_counts = self._parent_arrays()[1:]
        coverage = above / np.maximum(parent_counts[uniq], 1)
        kk = min(max(int(k), 0), len(uniq))
        if kk == 0:
            return []
        sel = np.arange(len(uniq), dtype=np.int64)
        if kk < len(uniq):
            sel = np.argpartition(-best, kk - 1)[:kk]
            boundary = best[sel].min()
            strict = np.nonzero(best > boundary)[0]
            tied = np.nonzero(best == boundary)[0]
            if len(strict) + len(tied) > kk:
                tied = tied[np.lexsort((uniq[tied], -coverage[tied]))
                            [:kk - len(strict)]]
                sel = np.concatenate([strict, tied])
        order = np.lexsort((uniq[sel], -coverage[sel], -best[sel]))
        sel = sel[order]
        hits = []
        for u in sel.tolist():
            row_entry = self._entries[int(best_row[u])]
            parent_entry = self._entries[int(parent_row[uniq[u]])]
            score = float(best[u])
            hits.append(QueryHit(
                name=parent_entry["name"], path=parent_entry["path"],
                design=parent_entry["design"], score=score,
                is_piracy=bool(score > delta),
                via=("chunk" if row_entry.get("kind") == "chunk"
                     else "design"),
                region=row_entry.get("region"),
                query_region=group_regions[int(best_part[u])],
                coverage=float(coverage[u])))
        return hits

    @staticmethod
    def _channel_ranks(channel):
        """0-based descending rank per parent, stable toward lower id."""
        order = np.argsort(-channel, kind="stable")
        ranks = np.empty(len(channel), dtype=np.int64)
        ranks[order] = np.arange(len(channel), dtype=np.int64)
        return ranks

    def _aggregate_fused(self, block, group_regions, struct, k, delta):
        """One group's hits under structural rank fusion.

        Two independent channels rank every parent design, and a parent
        keeps the *better* of its two ranks:

        - **embedding** — best cosine between the suspect's chunk parts
          and stored chunk rows (falling back to the whole suspect on a
          suspect too small to chunk, and to whole-design rows on a
          chunk-less index);
        - **structural** — the caller-supplied reverse-containment
          scores (:mod:`repro.index.wlsig`).

        The minimum-rank fusion lets either channel carry a scenario
        the other is blind to: chunk cosines rescue grafts whose WL
        colors were destroyed at the graft boundary, containment
        rescues grafts the saturated chunk-embedding space cannot
        separate.  Reported scores are whole-vs-whole cosines (the
        delta-comparable pairing); evidence fields keep describing the
        best raw (part, row) pair.

        Args:
            block: ``(parts, all rows)`` score matrix for this group,
                whole-suspect part first.
            group_regions: the group's part region descriptors.
            struct: structural score per parent design.
        """
        rows = np.arange(len(self), dtype=np.int64)
        partial = self._fused_partial(block, group_regions, rows, delta)
        return self._rank_fused(self._merge_fused([partial]),
                                group_regions, struct, k, delta)

    def _fused_partial(self, block, group_regions, rows, delta):
        """Per-parent fusion inputs over the scored rows (sparse).

        Besides the evidence reduction shared with the non-fused path,
        the fused channel needs two extras per candidate parent: the
        embedding-channel score (best chunk-vs-chunk cosine) and the
        delta-comparable whole-vs-whole ``design`` score.  Each design
        row lives in exactly one partition, so ``design`` is NaN for
        every non-owner partial and merging keeps the one real value.

        Args:
            block: ``(parts, len(rows))`` score matrix for this group.
            rows: scored global row ids (ascending; the full corpus in
                single-process serving, a partition's rows in partials).
        """
        row_best = block.max(axis=0)
        row_part = block.argmax(axis=0)
        uniq, inverse, best, best_row, best_part, above = \
            self._parent_partials(rows, row_best, row_part, delta)
        chunk_parts = [i for i, region in enumerate(group_regions)
                       if region is not None] or [0]
        if self.chunked:
            embed_rows = np.where(self._is_chunk[rows],
                                  block[chunk_parts].max(axis=0), -np.inf)
        else:
            embed_rows = block[0]
        embed = np.full(len(uniq), -np.inf)
        np.maximum.at(embed, inverse, embed_rows)
        parent_row = self._parent_arrays()[1]
        drow = parent_row[uniq]
        pos = np.searchsorted(rows, drow)
        have = pos < len(rows)
        have &= rows[np.minimum(pos, len(rows) - 1)] == drow
        design = np.full(len(uniq), np.nan)
        design[have] = block[0, pos[have]]
        return PartialGroups(parents=uniq, best=best, best_row=best_row,
                             best_part=best_part, above=above,
                             embed=embed, design=design)

    def _merge_fused(self, partials):
        """Dense per-parent fusion inputs from disjoint-row partials.

        Returns ``(embed, design, best, best_row, best_part, above)``
        arrays indexed by parent id.  Fused queries score every row, so
        the union of partials covers every parent.
        """
        n_parents = len(self._parent_arrays()[1])
        allp = np.concatenate([p.parents for p in partials])
        allbest = np.concatenate([p.best for p in partials])
        allrow = np.concatenate([p.best_row for p in partials])
        allpart = np.concatenate([p.best_part for p in partials])
        # Best evidence per parent under (-score, row id): order the
        # concatenated candidates and keep each parent's first.
        order = np.lexsort((allrow, -allbest, allp))
        first = np.ones(len(order), dtype=bool)
        first[1:] = allp[order][1:] != allp[order][:-1]
        pick = order[first]
        best = np.full(n_parents, -np.inf)
        best[allp[pick]] = allbest[pick]
        best_row = np.zeros(n_parents, dtype=np.int64)
        best_row[allp[pick]] = allrow[pick]
        best_part = np.zeros(n_parents, dtype=np.int64)
        best_part[allp[pick]] = allpart[pick]
        above = np.zeros(n_parents, dtype=np.int64)
        np.add.at(above, allp, np.concatenate([p.above for p in partials]))
        embed = np.full(n_parents, -np.inf)
        np.maximum.at(embed, allp,
                      np.concatenate([p.embed for p in partials]))
        alldesign = np.concatenate([p.design for p in partials])
        have = ~np.isnan(alldesign)
        design = np.full(n_parents, np.nan)
        design[allp[have]] = alldesign[have]
        return embed, design, best, best_row, best_part, above

    def _rank_fused(self, merged, group_regions, struct, k, delta):
        """Rank parents by fused channel rank and build hits.

        Args:
            merged: dense ``(embed, design, best, best_row, best_part,
                above)`` arrays from :meth:`_merge_fused`.
        """
        embed, design, best, best_row, best_part, above = merged
        parent_row, parent_counts = self._parent_arrays()[1:]
        n_parents = len(parent_row)
        struct = np.asarray(struct, dtype=np.float64)
        if struct.shape != (n_parents,):
            raise IndexStoreError(
                f"structural scores have shape {struct.shape}, expected "
                f"({n_parents},)")
        fused = np.minimum(self._channel_ranks(embed),
                           self._channel_ranks(struct))
        kk = min(max(int(k), 0), n_parents)
        if kk == 0:
            return []
        sel = np.lexsort((np.arange(n_parents, dtype=np.int64),
                          fused))[:kk]
        coverage = above / np.maximum(parent_counts, 1)
        hits = []
        for u in sel.tolist():
            score = float(design[u])
            row_entry = self._entries[int(best_row[u])]
            parent_entry = self._entries[int(parent_row[u])]
            hits.append(QueryHit(
                name=parent_entry["name"], path=parent_entry["path"],
                design=parent_entry["design"], score=score,
                is_piracy=bool(score > delta),
                via=("chunk" if row_entry.get("kind") == "chunk"
                     else "design"),
                region=row_entry.get("region"),
                query_region=group_regions[int(best_part[u])],
                coverage=float(coverage[u]),
                struct=float(struct[u])))
        return hits

    def _hits(self, rows, scores, delta):
        """Hit objects for ranked rows with their (rank-aligned) scores."""
        hits = []
        for rank, row in enumerate(rows.tolist()):
            score = float(scores[rank])
            entry = self._entries[row]
            hits.append(QueryHit(name=entry["name"], path=entry["path"],
                                 design=entry["design"], score=score,
                                 is_piracy=bool(score > delta)))
        return hits
