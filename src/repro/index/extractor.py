"""Corpus-scale graph extraction: parallel workers + content-addressed cache.

Extraction of one Verilog file is independent of every other file, so a
corpus fans out over ``multiprocessing`` workers.  The driver is frontend-
agnostic — it runs the RTL dataflow pipeline or the synthesize-to-netlist
frontend (see :mod:`repro.ir.frontends`) depending on the requested level —
and keeps three properties the single-file pipeline cannot offer:

- **Deterministic ordering** — results come back in input order no matter
  which worker finishes first, so two runs over the same corpus produce
  identical reports and identical index layouts.
- **Per-file error isolation** — a file the frontend cannot handle yields
  an :class:`ExtractionResult` with ``error`` set; the run continues and
  the failure is recorded in the index instead of crashing the build.
- **Cache reuse** — the parent preprocesses each file (cheap), computes its
  content key, and only ships cache misses to the workers (parse /
  elaborate / analyze or synthesize are the expensive phases).  Worker
  results come back as plain serialized GraphIR payloads and are written
  to the cache by the parent, so the cache never sees concurrent writers.
"""

import multiprocessing
import os
from dataclasses import dataclass

from repro.ir import serialize as ir_serialize
from repro.ir.frontends import RTLFrontend, get_frontend


@dataclass
class ExtractionResult:
    """Outcome of extracting one file (exactly one of graph/error is set)."""

    path: str
    name: str            # file stem; unique-ified by the index builder
    graph: object = None  # GraphIR on success
    error: str = None     # "ExcType: message" on failure
    key: str = None       # content key (None when preprocessing failed)
    cached: bool = False

    @property
    def ok(self):
        return self.error is None


def _describe(exc):
    return f"{type(exc).__name__}: {exc}"


def _extract_task(task):
    """Worker: run the post-preprocess frontend phases on cleaned text.

    Runs in a forked child; returns plain picklable data only.  Any
    exception — parse error, elaboration error, even a crash in the
    analyzer or synthesizer — is captured as a string so one bad file
    cannot take down the pool.
    """
    position, cleaned, top, level, options = task
    try:
        frontend = get_frontend(level, **options)
        graph = frontend.extract_preprocessed(cleaned, top=top)
        return position, ir_serialize.to_dict(graph), None
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        return position, None, _describe(exc)


def default_jobs(task_count=None):
    """Worker count: one per core, capped at 8 and at the task count."""
    jobs = min(os.cpu_count() or 1, 8)
    if task_count is not None:
        jobs = min(jobs, max(task_count, 1))
    return jobs


class CorpusExtractor:
    """Extract GraphIRs for many Verilog files, in parallel and cached.

    Args:
        pipeline: a configured :class:`~repro.dataflow.pipeline.DFGPipeline`
            for the RTL frontend (back-compat convenience; ignored when
            ``frontend`` is given).
        cache: a :class:`~repro.index.cache.DFGCache`, or ``None`` to
            always re-extract.
        jobs: worker processes; ``None`` picks :func:`default_jobs`,
            ``1`` forces the serial path (same results, no pool).
        frontend: an :mod:`repro.ir.frontends` frontend selecting the
            extraction level (default: the RTL dataflow frontend).
    """

    def __init__(self, pipeline=None, cache=None, jobs=None, frontend=None):
        if frontend is None:
            frontend = RTLFrontend(pipeline=pipeline)
        self.frontend = frontend
        self.cache = cache
        self.jobs = jobs
        #: Worker count the last extract_paths run actually used (1 when
        #: everything was cached or served serially).
        self.last_jobs = 1

    def _prepare(self, path, top):
        """Preprocess + cache probe for one file; returns a result shell
        plus the cleaned text when extraction is still needed."""
        result = ExtractionResult(path=str(path),
                                  name=os.path.splitext(
                                      os.path.basename(str(path)))[0])
        try:
            with open(path) as handle:
                text = handle.read()
            cleaned = self.frontend.preprocess_text(text)
        except Exception as exc:  # noqa: BLE001 - per-file isolation
            result.error = _describe(exc)
            return result, None
        result.key = self.frontend.content_key(cleaned, top=top)
        if self.cache is not None:
            graph = self.cache.load(result.key)
            if graph is not None:
                result.graph = graph
                result.cached = True
                return result, None
        return result, cleaned

    def extract_paths(self, paths, top=None, progress=None):
        """Extract every file in ``paths``; results in input order.

        Args:
            paths: Verilog file paths.
            top: top-module name applied to every file (rarely useful on
                mixed corpora; leave ``None`` to auto-detect per file).
            progress: optional ``callback(done, total)`` invoked as files
                finish (cache hits and preprocess failures count as done
                immediately; extracted files as each worker result
                lands).  Drives the CLI's ``--progress`` reporting.
        """
        results = []
        pending = []  # (position, cleaned)
        for path in paths:
            result, cleaned = self._prepare(path, top)
            results.append(result)
            if cleaned is not None:
                pending.append((len(results) - 1, cleaned))

        level, options = self.frontend.worker_spec()
        tasks = [(pos, cleaned, top, level, options)
                 for pos, cleaned in pending]
        done = len(results) - len(tasks)
        if progress is not None:
            progress(done, len(results))

        def _finish(outcome):
            nonlocal done
            position, payload, error = outcome
            result = results[position]
            if error is not None:
                result.error = error
            else:
                result.graph = ir_serialize.from_dict(payload)
                if self.cache is not None:
                    self.cache.store(result.key, result.graph)
            done += 1
            if progress is not None:
                progress(done, len(results))

        jobs = self.jobs if self.jobs is not None else default_jobs(len(tasks))
        self.last_jobs = 1
        if tasks:
            if jobs > 1 and len(tasks) > 1:
                self.last_jobs = jobs
                with multiprocessing.Pool(processes=jobs) as pool:
                    # Unordered streaming: progress ticks as workers
                    # finish; results slot into place by position.
                    for outcome in pool.imap_unordered(_extract_task,
                                                       tasks):
                        _finish(outcome)
            else:
                for task in tasks:
                    _finish(_extract_task(task))
        return results
