"""Multi-granularity subgraph chunks for partial-theft detection.

A whole-design embedding drowns out a stolen fraction of a netlist: the
cosine between a 500-gate host carrying 60 grafted gates and the 60-gate
victim is dominated by the host.  This module decomposes one
:class:`~repro.ir.graphir.GraphIR` into overlapping **chunks** — small
subgraphs embedded individually — so a stolen region matches a stored
region of its victim head-on, at full similarity.

Three complementary strategies (all deterministic, all pure functions of
the graph structure):

- **fanin cones** — everything an output signal or state element
  (DFF cell / ``reg`` signal) transitively depends on.  Cones follow the
  design's functional decomposition, so a thief lifting "the ALU" lifts
  a cone.
- **connected components** — weakly connected regions, when the design
  is not one blob.  A grafted block that is loosely wired into its host
  is (close to) a component.
- **sliding windows** — fixed-size windows over a deterministic
  topological order.  Grafted gates are appended after the host's in
  netlist order, so they cluster inside a few windows even when cones
  and components miss them.

Chunks below :attr:`ChunkConfig.min_nodes` or covering the whole graph
are dropped — a single-gate design produces **zero** chunks and behaves
exactly like a v3 single-row corpus.  Extraction order and node
numbering are fully deterministic (sorted iteration everywhere), so two
processes — or two machines — produce byte-identical chunk sets.
"""

import heapq
from dataclasses import dataclass

from repro.ir.graphir import KIND_CELL, KIND_SIGNAL

#: Bump when the chunking strategy changes shape: stored chunk rows are
#: only reused / comparable when the version matches.
CHUNKS_VERSION = 1


@dataclass(frozen=True)
class ChunkConfig:
    """Tunables for :func:`extract_chunks`.

    The defaults are sized so that the tiny designs used in unit tests
    (a handful of nodes) produce no chunks at all, while realistic
    netlists (hundreds of gates) shatter into a few dozen overlapping
    regions.

    Attributes:
        window: nodes per sliding window over the topological order.
        stride: topological-order step between window starts.
        min_nodes: chunks smaller than this are dropped.
        max_chunks: hard cap per design (cones/components are kept
            first; windows are thinned evenly).
        cone_seeds: cap on fanin-cone seeds per design (evenly spaced
            over the sorted seed list when there are more).
    """

    window: int = 48
    stride: int = 24
    min_nodes: int = 10
    max_chunks: int = 24
    cone_seeds: int = 12

    def as_dict(self):
        return {
            "version": CHUNKS_VERSION,
            "window": int(self.window),
            "stride": int(self.stride),
            "min_nodes": int(self.min_nodes),
            "max_chunks": int(self.max_chunks),
            "cone_seeds": int(self.cone_seeds),
        }

    @classmethod
    def from_dict(cls, data):
        return cls(window=int(data["window"]), stride=int(data["stride"]),
                   min_nodes=int(data["min_nodes"]),
                   max_chunks=int(data["max_chunks"]),
                   cone_seeds=int(data["cone_seeds"]))


def topological_order(graph):
    """Deterministic dependencies-first order over all nodes.

    Kahn's algorithm with a min-heap: among ready nodes the smallest id
    is emitted first, so the order is a pure function of the graph.
    Cycles (DFF feedback paths) are broken by force-emitting the
    smallest not-yet-emitted id, which keeps the order total and
    deterministic on cyclic graphs too.
    """
    n = len(graph)
    pending = [len(graph._succ[i]) for i in range(n)]
    emitted = [False] * n
    ready = [i for i in range(n) if pending[i] == 0]
    heapq.heapify(ready)
    order = []
    cursor = 0  # smallest id that might still be unemitted
    while len(order) < n:
        while ready and emitted[ready[0]]:
            heapq.heappop(ready)
        if not ready:
            while emitted[cursor]:
                cursor += 1
            ready = [cursor]
        node = heapq.heappop(ready)
        if emitted[node]:
            continue
        emitted[node] = True
        order.append(node)
        for pred in graph._pred[node]:
            pending[pred] -= 1
            if pending[pred] == 0 and not emitted[pred]:
                heapq.heappush(ready, pred)
    return order


def _is_state_node(node):
    """Output ports and sequential elements seed the fanin cones."""
    if node.kind == KIND_SIGNAL and node.label in ("output", "reg"):
        return True
    return node.kind == KIND_CELL and "dff" in node.label


def _thin(items, cap):
    """At most ``cap`` items, evenly spaced, order preserved."""
    if cap <= 0 or len(items) <= cap:
        return list(items)
    step = len(items) / cap
    return [items[int(i * step)] for i in range(cap)]


def _cone_chunks(graph, config):
    seeds = [node.node_id for node in graph.nodes if _is_state_node(node)]
    chunks = []
    for seed in _thin(seeds, config.cone_seeds):
        cone = graph.reachable_from([seed])
        node = graph.nodes[seed]
        label = node.name if node.name else f"{node.label}@{seed}"
        chunks.append((frozenset(cone), {"kind": "cone", "label": label}))
    return chunks


def _component_chunks(graph):
    """Weakly connected components (only useful when there are > 1)."""
    n = len(graph)
    seen = [False] * n
    components = []
    for start in range(n):
        if seen[start]:
            continue
        stack, members = [start], []
        seen[start] = True
        while stack:
            node = stack.pop()
            members.append(node)
            for other in graph._succ[node] + graph._pred[node]:
                if not seen[other]:
                    seen[other] = True
                    stack.append(other)
        components.append(members)
    if len(components) <= 1:
        return []
    return [(frozenset(members),
             {"kind": "component", "label": f"cc{index}"})
            for index, members in enumerate(components)]


def _window_chunks(graph, config):
    """Sliding windows over the deterministic topological order."""
    n = len(graph)
    if n <= config.window:
        return []
    order = topological_order(graph)
    chunks = []
    start = 0
    while start < n:
        stop = min(start + config.window, n)
        if stop - start < config.min_nodes and chunks:
            # Fold a short tail into the preceding window instead of
            # emitting a sliver.
            break
        members = frozenset(order[start:stop])
        chunks.append((members, {"kind": "window",
                                 "label": f"topo[{start}:{stop}]",
                                 "span": [start, stop]}))
        if stop == n:
            break
        start += config.stride
    return chunks


def extract_chunks(graph, config=None):
    """Deterministic ``(subgraph, region)`` chunk list for one graph.

    The region dict describes *where* the chunk came from — it is stored
    in the index metadata and surfaced as match evidence ("which region
    matched").  Every region carries ``kind``/``label``/``nodes``/
    ``frac`` (chunk size as a fraction of the design); window regions
    add their ``span`` in topological positions.

    Chunks are deduplicated by node-id set, dropped when smaller than
    ``config.min_nodes`` or equal to the whole graph, and capped at
    ``config.max_chunks`` (cones and components survive first).
    """
    config = config or ChunkConfig()
    n = len(graph)
    if n < config.min_nodes:
        return []
    candidates = (_cone_chunks(graph, config)
                  + _component_chunks(graph)
                  + _window_chunks(graph, config))
    seen_sets = set()
    kept = []
    for members, region in candidates:
        if len(members) < config.min_nodes or len(members) >= n:
            continue
        if members in seen_sets:
            continue
        seen_sets.add(members)
        kept.append((members, region))
    if len(kept) > config.max_chunks:
        priority = [c for c in kept if c[1]["kind"] != "window"]
        windows = [c for c in kept if c[1]["kind"] == "window"]
        priority = priority[:config.max_chunks]
        kept = priority + _thin(windows, config.max_chunks - len(priority))
    chunks = []
    for index, (members, region) in enumerate(kept):
        sub = graph.subgraph(members)
        sub.name = f"{graph.name}#{region['kind']}{index}"
        region = dict(region, nodes=len(members),
                      frac=round(len(members) / n, 4))
        chunks.append((sub, region))
    return chunks
