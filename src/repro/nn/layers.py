"""Neural-network modules: Linear, GCN convolution, dropout.

The GCN layer implements Eq. 5 of the paper:

    X' = sigma( D^-1/2 (A + I) D^-1/2 X W )

The normalized adjacency is precomputed per graph (it is constant) with
:func:`normalize_adjacency`; the layer then only does sparse @ dense @ W.
"""

import numpy as np
from scipy import sparse

from repro.nn.tensor import Tensor, spmm


class Module:
    """Base class: parameter registration and train/eval mode."""

    def __init__(self):
        self._parameters = {}
        self._modules = {}
        self.training = True

    def register_parameter(self, name, tensor):
        tensor.requires_grad = True
        self._parameters[name] = tensor
        return tensor

    def register_module(self, name, module):
        self._modules[name] = module
        return module

    def parameters(self):
        """All trainable tensors, depth-first."""
        params = list(self._parameters.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix=""):
        """(name, tensor) pairs, depth-first."""
        items = [(prefix + name, tensor)
                 for name, tensor in self._parameters.items()]
        for mod_name, module in self._modules.items():
            items.extend(module.named_parameters(f"{prefix}{mod_name}."))
        return items

    def zero_grad(self):
        for param in self.parameters():
            param.zero_grad()

    def train(self):
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self):
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    def state_dict(self):
        """Copy of all parameter arrays, keyed by dotted name."""
        return {name: tensor.data.copy()
                for name, tensor in self.named_parameters()}

    def load_state_dict(self, state):
        named = dict(self.named_parameters())
        missing = set(named) - set(state)
        if missing:
            raise KeyError(f"state dict missing parameters: {sorted(missing)}")
        for name, tensor in named.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != tensor.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {tensor.data.shape}")
            tensor.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


def glorot(shape, rng):
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features, out_features, bias=True, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight", Tensor(glorot((in_features, out_features), rng)))
        self.bias = None
        if bias:
            self.bias = self.register_parameter(
                "bias", Tensor(np.zeros(out_features)))

    def forward(self, x):
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


def normalize_adjacency(adjacency, add_self_loops=True):
    """Symmetric GCN normalization ``D^-1/2 (A + I) D^-1/2`` (CSR).

    Args:
        adjacency: scipy sparse adjacency matrix (N x N).
        add_self_loops: add the identity (the paper's ``A + I``).
    """
    matrix = adjacency.tocsr().astype(np.float64)
    if add_self_loops:
        matrix = matrix + sparse.identity(matrix.shape[0], format="csr")
    degree = np.asarray(matrix.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degree)
    nonzero = degree > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degree[nonzero])
    scaling = sparse.diags(inv_sqrt)
    return (scaling @ matrix @ scaling).tocsr()


class GCNConv(Module):
    """Graph convolution (Kipf & Welling), Eq. 5 of the paper.

    ``forward(x, a_norm)`` expects the *pre-normalized* adjacency so that the
    normalization cost is paid once per graph, not once per layer call.
    """

    def __init__(self, in_features, out_features, bias=True, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight", Tensor(glorot((in_features, out_features), rng)))
        self.bias = None
        if bias:
            self.bias = self.register_parameter(
                "bias", Tensor(np.zeros(out_features)))

    def forward(self, x, a_norm):
        out = spmm(a_norm, x) @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate=0.1, rng=None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng or np.random.default_rng(0)

    def draw_mask(self, shape):
        """Draw one inverted-dropout mask, consuming the module RNG.

        Exposed so the block-diagonal batched trainer can draw per-graph
        masks in exactly the per-graph forward order, keeping batched and
        per-graph training bit-compatible in their randomness.
        """
        keep = 1.0 - self.rate
        mask = self._rng.random(shape) < keep
        return mask.astype(np.float64) / keep

    def forward(self, x):
        if not self.training or self.rate == 0.0:
            return x
        return x * Tensor(self.draw_mask(x.shape))
