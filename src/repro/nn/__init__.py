"""Numpy-based neural-network stack replacing PyTorch/PyG.

Contents: reverse-mode autograd (:class:`Tensor`), GNN layers
(:class:`GCNConv`), self-attention pooling (:class:`SAGPool`), readout,
cosine-embedding loss, and optimizers.
"""

from repro.nn.batch import (
    GraphBatch,
    batched_embed,
    batched_forward,
    pack_prepared,
)
from repro.nn.layers import (
    Dropout,
    GCNConv,
    Linear,
    Module,
    glorot,
    normalize_adjacency,
)
from repro.nn.loss import cosine_embedding_loss, pairwise_cosine_loss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.pooling import Readout, SAGPool, readout
from repro.nn.tensor import (
    Tensor,
    concat,
    cosine_similarity,
    dot,
    l2_norm,
    spmm,
)

__all__ = [
    "Tensor", "concat", "cosine_similarity", "dot", "l2_norm", "spmm",
    "Module", "Linear", "GCNConv", "Dropout", "glorot", "normalize_adjacency",
    "SAGPool", "Readout", "readout",
    "GraphBatch", "batched_embed", "batched_forward", "pack_prepared",
    "cosine_embedding_loss", "pairwise_cosine_loss",
    "Optimizer", "SGD", "Adam",
]
