"""Minimal reverse-mode automatic differentiation over numpy arrays.

This replaces PyTorch for the GNN4IP model.  A :class:`Tensor` wraps an
``ndarray``; operations build a computation graph, and :meth:`Tensor.backward`
propagates gradients with a topological traversal.  Sparse matrices
(scipy CSR) are supported as *constant* left operands of :func:`spmm`, which
is all the GCN propagation needs.
"""

import numpy as np
from scipy import sparse


def _unbroadcast(grad, shape):
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out the prepended axes first.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient tape.

    Attributes:
        data: the underlying float64 ndarray.
        grad: accumulated gradient (same shape), or ``None``.
        requires_grad: whether this tensor participates in backprop.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad=False):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = None
        self.requires_grad = bool(requires_grad)
        self._backward = None
        self._parents = ()

    # -- factories ---------------------------------------------------------
    @staticmethod
    def zeros(shape, requires_grad=False):
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ensure(value):
        """Wrap ``value`` in a Tensor if it is not one already."""
        return value if isinstance(value, Tensor) else Tensor(value)

    # -- shape helpers -------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    def __len__(self):
        return len(self.data)

    def item(self):
        return float(self.data)

    def numpy(self):
        """The raw ndarray (no copy)."""
        return self.data

    def detach(self):
        """A new Tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    # -- graph bookkeeping -----------------------------------------------
    def _make(self, data, parents, backward):
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def backward(self, grad=None):
        """Backpropagate from this tensor (default seed: ones)."""
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
        topo = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited or not node.requires_grad:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                stack.append((parent, False))
        self.grad = grad if self.grad is None else self.grad + grad
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self):
        self.grad = None

    def _accumulate(self, grad):
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        self.grad = grad if self.grad is None else self.grad + grad

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other):
        other = Tensor.ensure(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-Tensor.ensure(other))

    def __rsub__(self, other):
        return Tensor.ensure(other) + (-self)

    def __mul__(self, other):
        other = Tensor.ensure(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = Tensor.ensure(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        return self._make(self.data / other.data, (self, other), backward)

    def pow(self, exponent):
        """Elementwise power with a constant exponent."""
        def backward(grad):
            if self.requires_grad:
                self._accumulate(
                    grad * exponent * np.power(self.data, exponent - 1))

        return self._make(np.power(self.data, exponent), (self,), backward)

    def sqrt(self):
        return self.pow(0.5)

    def __matmul__(self, other):
        other = Tensor.ensure(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ grad)

        return self._make(self.data @ other.data, (self, other), backward)

    # -- nonlinearities ------------------------------------------------------
    def relu(self):
        mask = self.data > 0

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def tanh(self):
        value = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - value ** 2))

        return self._make(value, (self,), backward)

    def sigmoid(self):
        value = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * value * (1.0 - value))

        return self._make(value, (self,), backward)

    # -- reductions -----------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        def backward(grad):
            if not self.requires_grad:
                return
            if axis is None:
                self._accumulate(np.broadcast_to(grad, self.data.shape))
            else:
                expanded = grad if keepdims else np.expand_dims(grad, axis)
                self._accumulate(np.broadcast_to(expanded, self.data.shape))

        return self._make(self.data.sum(axis=axis, keepdims=keepdims),
                          (self,), backward)

    def mean(self, axis=None, keepdims=False):
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims=False):
        """Max reduction; gradient flows to the (first) argmax positions."""
        value = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            if axis is None:
                mask = (self.data == value)
                mask = mask / mask.sum()
                self._accumulate(mask * grad)
                return
            expanded_value = value if keepdims else np.expand_dims(value, axis)
            mask = (self.data == expanded_value).astype(np.float64)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            expanded_grad = grad if keepdims else np.expand_dims(grad, axis)
            self._accumulate(mask * expanded_grad)

        return self._make(value, (self,), backward)

    # -- indexing / shaping -----------------------------------------------
    def index_select(self, indices):
        """Select rows (axis 0) by integer array; differentiable."""
        indices = np.asarray(indices, dtype=np.int64)

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices, grad)
                self._accumulate(full)

        return self._make(self.data[indices], (self,), backward)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(self.data.shape))

        return self._make(self.data.reshape(shape), (self,), backward)

    @property
    def T(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.T)

        return self._make(self.data.T, (self,), backward)

    def __repr__(self):
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"


def spmm(matrix, dense):
    """Sparse-constant @ dense-tensor product.

    ``matrix`` is a scipy sparse matrix treated as a constant (no gradient);
    ``dense`` is a :class:`Tensor`.  Backward uses ``matrix.T @ grad``.
    """
    if not sparse.issparse(matrix):
        raise TypeError("spmm expects a scipy sparse matrix")
    dense = Tensor.ensure(dense)
    out_data = matrix @ dense.data

    def backward(grad):
        if dense.requires_grad:
            dense._accumulate(matrix.T @ grad)

    return dense._make(out_data, (dense,), backward)


def concat(tensors, axis=0):
    """Differentiable concatenation along ``axis``."""
    tensors = [Tensor.ensure(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    out = Tensor(data)
    if any(t.requires_grad for t in tensors):
        out.requires_grad = True
        out._parents = tuple(tensors)
        out._backward = backward
    return out


def dot(a, b):
    """Dot product of two 1-D tensors."""
    return (a * b).sum()


def l2_norm(a, eps=1e-12):
    """Euclidean norm of a 1-D tensor (stabilized)."""
    return ((a * a).sum() + eps).sqrt()


def cosine_similarity(a, b, eps=1e-12):
    """Cosine similarity of two 1-D tensors (Eq. 6 of the paper)."""
    return dot(a, b) / (l2_norm(a, eps) * l2_norm(b, eps))
