"""Batched graph inference: many DFGs through one forward pass.

:class:`~repro.core.hw2vec.HW2VEC` embeds one graph per call, which wastes
time on per-graph Python and small-matrix overhead when embedding a corpus.
Batching packs the graphs into one block-diagonal system:

- node features are stacked into a single ``(sum(N_i), F)`` matrix, and
- the pre-normalized adjacencies become one block-diagonal CSR matrix,

so every GCN layer runs as a single sparse @ dense @ dense product over the
whole batch.  The normalized adjacency has no cross-block entries, so the
batched math is exactly the per-graph math; the only numerical difference
is BLAS summation order on the larger matrices, which the tests bound at
1e-9 relative against :meth:`HW2VEC.embed` in eval mode.

The pooling / readout tail (top-k selection, tanh gating, reduction) is
inherently per-graph, so it runs as a vectorized numpy loop over the node
segments of the batch.
"""

import numpy as np
from scipy import sparse


class GraphBatch:
    """A packed batch of prepared graphs.

    Attributes:
        features: stacked node features, ``(total_nodes, F)``.
        a_norm: block-diagonal normalized adjacency (CSR).
        sizes: node count per graph.
        offsets: start row of each graph's node segment (len = n_graphs+1).
    """

    __slots__ = ("features", "a_norm", "sizes", "offsets")

    def __init__(self, features, a_norm, sizes):
        self.features = features
        self.a_norm = a_norm
        self.sizes = list(sizes)
        self.offsets = np.concatenate([[0], np.cumsum(self.sizes)])

    def __len__(self):
        return len(self.sizes)

    def segment(self, matrix, index):
        """Rows of ``matrix`` belonging to graph ``index``."""
        return matrix[self.offsets[index]:self.offsets[index + 1]]


def pack_prepared(prepared_graphs):
    """Pack :class:`~repro.core.hw2vec.PreparedGraph` objects into a batch.

    Reuses each graph's cached ``a_norm``, so normalization is never
    recomputed; packing is a pure stack/block-diag operation.
    """
    prepared = list(prepared_graphs)
    if not prepared:
        raise ValueError("cannot pack an empty graph batch")
    features = np.vstack([p.features for p in prepared])
    a_norm = sparse.block_diag([p.a_norm for p in prepared], format="csr")
    return GraphBatch(features, a_norm, [p.num_nodes for p in prepared])


def _readout(x, mode):
    if mode == "max":
        return x.max(axis=0)
    if mode == "mean":
        return x.mean(axis=0)
    return x.sum(axis=0)


def batched_forward(encoder, batch):
    """Eval-mode forward pass over a :class:`GraphBatch`.

    Args:
        encoder: a :class:`~repro.core.hw2vec.HW2VEC` (weights are read
            directly; the encoder's train/eval mode is ignored — dropout
            is always off, matching ``embed``).
        batch: output of :func:`pack_prepared`.

    Returns:
        ``(n_graphs, hidden)`` embedding matrix.
    """
    x = batch.features
    for conv in encoder.convs:
        x = batch.a_norm @ x @ conv.weight.data
        if conv.bias is not None:
            x = x + conv.bias.data
        np.maximum(x, 0.0, out=x)

    score_layer = encoder.pool.score_layer
    scores = batch.a_norm @ x @ score_layer.weight.data
    if score_layer.bias is not None:
        scores = scores + score_layer.bias.data
    scores = scores.ravel()

    ratio = encoder.pool.ratio
    mode = encoder.readout.mode
    out = np.empty((len(batch), encoder.hidden))
    for index, size in enumerate(batch.sizes):
        seg_x = batch.segment(x, index)
        seg_scores = scores[batch.offsets[index]:batch.offsets[index + 1]]
        keep = max(1, int(np.ceil(ratio * size)))
        order = np.argsort(-seg_scores, kind="stable")
        kept = np.sort(order[:keep])
        gate = np.tanh(seg_scores[kept])[:, None]
        out[index] = _readout(seg_x[kept] * gate, mode)
    return out


def batched_embed(encoder, graphs, batch_size=64):
    """Embed a sequence of DFGs (or PreparedGraphs) in large batches.

    Splits the input into batches of at most ``batch_size`` graphs to bound
    peak memory, packs each, and runs :func:`batched_forward`.  Results
    match per-graph :meth:`HW2VEC.embed` calls to BLAS rounding (~1e-9
    relative).

    Returns:
        ``(n, hidden)`` numpy array in input order.
    """
    from repro.core.hw2vec import PreparedGraph

    items = list(graphs)
    if not items:
        return np.empty((0, encoder.hidden))
    prepared = [item if isinstance(item, PreparedGraph)
                else encoder.prepare(item) for item in items]
    chunks = []
    for start in range(0, len(prepared), batch_size):
        batch = pack_prepared(prepared[start:start + batch_size])
        chunks.append(batched_forward(encoder, batch))
    return np.vstack(chunks)
