"""Batched graph compute: many graphs through one forward (or backward) pass.

:class:`~repro.core.hw2vec.HW2VEC` embeds one graph per call, which wastes
time on per-graph Python and small-matrix overhead when embedding a corpus.
Batching packs the graphs into one block-diagonal system:

- node features are stacked into a single ``(sum(N_i), F)`` matrix, and
- the pre-normalized adjacencies become one block-diagonal CSR matrix,

so every GCN layer runs as a single sparse @ dense @ dense product over the
whole batch.  The normalized adjacency has no cross-block entries, so the
batched math is exactly the per-graph math; the only numerical difference
is BLAS summation order on the larger matrices, which the tests bound at
1e-9 relative against :meth:`HW2VEC.embed` in eval mode.

The pooling / readout tail (top-k selection, tanh gating, reduction) is
inherently per-graph, so it runs as a vectorized numpy loop over the node
segments of the batch.

Two entry points share the packing:

- :func:`batched_forward` / :func:`batched_embed` — raw-numpy eval path
  for inference (no gradient tape, dropout always off).
- :func:`batched_forward_tensor` + :func:`batched_pair_loss` — the
  autograd path the trainer uses: the same block-diagonal system built
  from :class:`~repro.nn.tensor.Tensor` ops, so one ``backward()`` call
  propagates gradients for a whole minibatch of graphs and pair losses.
"""

import numpy as np
from scipy import sparse

from repro.nn.pooling import topk_nodes
from repro.nn.tensor import Tensor, concat


class GraphBatch:
    """A packed batch of prepared graphs.

    Attributes:
        features: stacked node features, ``(total_nodes, F)``.
        a_norm: block-diagonal normalized adjacency (CSR).
        sizes: node count per graph.
        offsets: start row of each graph's node segment (len = n_graphs+1).
    """

    __slots__ = ("features", "a_norm", "sizes", "offsets")

    def __init__(self, features, a_norm, sizes):
        self.features = features
        self.a_norm = a_norm
        self.sizes = list(sizes)
        self.offsets = np.concatenate([[0], np.cumsum(self.sizes)])

    def __len__(self):
        return len(self.sizes)

    def segment(self, matrix, index):
        """Rows of ``matrix`` belonging to graph ``index``."""
        return matrix[self.offsets[index]:self.offsets[index + 1]]


def pack_prepared(prepared_graphs):
    """Pack :class:`~repro.core.hw2vec.PreparedGraph` objects into a batch.

    Reuses each graph's cached ``a_norm``, so normalization is never
    recomputed; packing is a pure stack/block-diag operation.
    """
    prepared = list(prepared_graphs)
    if not prepared:
        raise ValueError("cannot pack an empty graph batch")
    features = np.vstack([p.features for p in prepared])
    a_norm = sparse.block_diag([p.a_norm for p in prepared], format="csr")
    return GraphBatch(features, a_norm, [p.num_nodes for p in prepared])


def _readout(x, mode):
    if mode == "max":
        return x.max(axis=0)
    if mode == "mean":
        return x.mean(axis=0)
    return x.sum(axis=0)


def batched_forward(encoder, batch):
    """Eval-mode forward pass over a :class:`GraphBatch`.

    Args:
        encoder: a :class:`~repro.core.hw2vec.HW2VEC` (weights are read
            directly; the encoder's train/eval mode is ignored — dropout
            is always off, matching ``embed``).
        batch: output of :func:`pack_prepared`.

    Returns:
        ``(n_graphs, hidden)`` embedding matrix.
    """
    x = batch.features
    for conv in encoder.convs:
        x = batch.a_norm @ x @ conv.weight.data
        if conv.bias is not None:
            x = x + conv.bias.data
        np.maximum(x, 0.0, out=x)

    score_layer = encoder.pool.score_layer
    scores = batch.a_norm @ x @ score_layer.weight.data
    if score_layer.bias is not None:
        scores = scores + score_layer.bias.data
    scores = scores.ravel()

    ratio = encoder.pool.ratio
    mode = encoder.readout.mode
    out = np.empty((len(batch), encoder.hidden))
    for index, size in enumerate(batch.sizes):
        seg_x = batch.segment(x, index)
        seg_scores = scores[batch.offsets[index]:batch.offsets[index + 1]]
        kept = topk_nodes(seg_scores, size, ratio)
        gate = np.tanh(seg_scores[kept])[:, None]
        out[index] = _readout(seg_x[kept] * gate, mode)
    return out


def batched_forward_tensor(encoder, batch):
    """Autograd-capable forward pass over a :class:`GraphBatch`.

    The differentiable twin of :func:`batched_forward`: runs the GCN stack
    as block-diagonal Tensor ops (building the gradient tape through the
    encoder's weights), honours the encoder's train/eval mode for dropout,
    and applies the SAGPool/readout tail per node segment with
    differentiable gathers.  Dropout masks are drawn *per graph* in packed
    order (graph-major, layer-minor) — the exact RNG consumption order of
    per-graph :meth:`HW2VEC.forward` calls over the same graphs — so
    batched training reproduces the per-graph loop bit-for-bit in its
    randomness, not just in expectation.  Per-graph results match
    :meth:`HW2VEC.forward` on the same mode to BLAS rounding, and — because
    the blocks share no entries — the gradients accumulated by
    ``backward()`` equal the sum of per-graph backward passes.

    Returns:
        ``(n_graphs, hidden)`` embedding Tensor.
    """
    dropout = encoder.dropout
    use_dropout = dropout.training and dropout.rate > 0.0
    masks = None
    if use_dropout:
        layer_chunks = [[] for _ in encoder.convs]
        for size in batch.sizes:
            for chunks in layer_chunks:
                chunks.append(dropout.draw_mask((size, encoder.hidden)))
        masks = [Tensor(np.vstack(chunks)) for chunks in layer_chunks]

    x = Tensor(batch.features)
    for layer, conv in enumerate(encoder.convs):
        x = conv(x, batch.a_norm).relu()
        if use_dropout:
            x = x * masks[layer]
    scores = encoder.pool.score_layer(x, batch.a_norm)
    scores = scores.reshape(scores.shape[0])

    ratio = encoder.pool.ratio
    # Top-k selection is data-dependent but not differentiated (exactly as
    # in SAGPool), so the kept indices come from the raw score values.
    kept_all = []
    counts = []
    for index, size in enumerate(batch.sizes):
        start = batch.offsets[index]
        kept = topk_nodes(scores.data[start:start + size], size, ratio)
        kept_all.append(start + kept)
        counts.append(len(kept))
    kept_all = np.concatenate(kept_all)

    gate = scores.index_select(kept_all).tanh().reshape(len(kept_all), 1)
    gated = x.index_select(kept_all) * gate

    mode = encoder.readout.mode
    rows = []
    offset = 0
    for keep in counts:
        segment = gated.index_select(np.arange(offset, offset + keep))
        if mode == "max":
            row = segment.max(axis=0)
        elif mode == "mean":
            row = segment.mean(axis=0)
        else:
            row = segment.sum(axis=0)
        rows.append(row.reshape(1, encoder.hidden))
        offset += keep
    return concat(rows, axis=0)


def batched_pair_loss(embeddings, pairs, margin=0.5, positive_weight=1.0,
                      eps=1e-12):
    """Vectorized cosine-embedding loss (Eq. 7) over rows of a batch.

    Args:
        embeddings: ``(m, hidden)`` Tensor (e.g. from
            :func:`batched_forward_tensor`).
        pairs: iterable of ``(i, j, label)`` row-index pairs with label in
            {+1, -1}.
        margin: the paper fixes this to 0.5.
        positive_weight: loss weight for similar pairs (class balancing).

    Returns:
        (mean loss Tensor, ``(n_pairs,)`` numpy similarity array) — both
        matching a per-pair :func:`~repro.nn.loss.cosine_embedding_loss`
        loop to summation-order rounding.
    """
    pairs = list(pairs)
    if not pairs:
        raise ValueError("no pairs given")
    left = embeddings.index_select([i for i, _, _ in pairs])
    right = embeddings.index_select([j for _, j, _ in pairs])
    dots = (left * right).sum(axis=1)
    norms_l = ((left * left).sum(axis=1) + eps).sqrt()
    norms_r = ((right * right).sum(axis=1) + eps).sqrt()
    sims = dots / (norms_l * norms_r)

    labels = np.array([label for _, _, label in pairs])
    positive = np.flatnonzero(labels == 1)
    negative = np.flatnonzero(labels != 1)
    total = Tensor(0.0)
    if len(positive):
        pos_loss = (1.0 - sims.index_select(positive)).sum()
        if positive_weight != 1.0:
            pos_loss = pos_loss * positive_weight
        total = total + pos_loss
    if len(negative):
        total = total + (sims.index_select(negative) - margin).relu().sum()
    return total * (1.0 / len(pairs)), sims.data.copy()


def batched_embed(encoder, graphs, batch_size=64):
    """Embed a sequence of DFGs (or PreparedGraphs) in large batches.

    Splits the input into batches of at most ``batch_size`` graphs to bound
    peak memory, packs each, and runs :func:`batched_forward`.  Results
    match per-graph :meth:`HW2VEC.embed` calls to BLAS rounding (~1e-9
    relative).

    Returns:
        ``(n, hidden)`` numpy array in input order.
    """
    from repro.core.hw2vec import PreparedGraph

    items = list(graphs)
    if not items:
        return np.empty((0, encoder.hidden))
    prepared = [item if isinstance(item, PreparedGraph)
                else encoder.prepare(item) for item in items]
    chunks = []
    for start in range(0, len(prepared), batch_size):
        batch = pack_prepared(prepared[start:start + batch_size])
        chunks.append(batched_forward(encoder, batch))
    return np.vstack(chunks)
