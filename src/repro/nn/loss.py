"""Loss functions.

The paper trains with the cosine-embedding loss (Eq. 7):

    H(y_hat, y) = 1 - y_hat              if y = +1  (similar pair)
                  max(0, y_hat - margin) if y = -1  (dissimilar pair)

with margin fixed to 0.5.
"""

from repro.nn.tensor import Tensor, cosine_similarity


def cosine_embedding_loss(h1, h2, label, margin=0.5):
    """Eq. 7 loss on a single pair of embeddings.

    Args:
        h1, h2: 1-D embedding tensors.
        label: +1 for a similar (piracy) pair, -1 for dissimilar.
        margin: the paper fixes this to 0.5.

    Returns:
        (loss, similarity) — both scalar Tensors.
    """
    if label not in (1, -1):
        raise ValueError(f"label must be +1 or -1, got {label}")
    similarity = cosine_similarity(h1, h2)
    if label == 1:
        loss = 1.0 - similarity
    else:
        loss = (similarity - margin).relu()
    return loss, similarity


def pairwise_cosine_loss(embeddings, pairs, margin=0.5):
    """Mean Eq. 7 loss over many pairs of precomputed embeddings.

    Args:
        embeddings: list of 1-D embedding Tensors (shared graph tapes).
        pairs: iterable of (i, j, label) with label in {+1, -1}.

    Returns:
        (mean_loss Tensor, list of float similarities)
    """
    pairs = list(pairs)
    if not pairs:
        raise ValueError("no pairs given")
    total = Tensor(0.0)
    similarities = []
    for i, j, label in pairs:
        loss, similarity = cosine_embedding_loss(
            embeddings[i], embeddings[j], label, margin)
        total = total + loss
        similarities.append(similarity.item())
    return total * (1.0 / len(pairs)), similarities
