"""Gradient-descent optimizers: SGD (the paper's batch GD) and Adam."""

import numpy as np


class Optimizer:
    """Base optimizer over a list of parameter Tensors."""

    def __init__(self, parameters, lr):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self):
        for param in self.parameters:
            param.zero_grad()

    def step(self):
        raise NotImplementedError


class SGD(Optimizer):
    """Plain (batch) gradient descent with optional momentum."""

    def __init__(self, parameters, lr=1e-3, momentum=0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the practical default for this model."""

    def __init__(self, parameters, lr=1e-3, betas=(0.9, 0.999), eps=1e-8):
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self._step += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1 ** self._step
        bias2 = 1.0 - beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            m *= beta1
            m += (1.0 - beta1) * param.grad
            v *= beta2
            v += (1.0 - beta2) * param.grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
