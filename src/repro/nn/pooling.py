"""Graph pooling: self-attention top-k pooling (SAGPool) and readout.

SAGPool (Lee et al. [28], as used by the paper's Graph_Pool layer): a GCN
scoring layer predicts one attention value per node, the top ``ceil(ratio*N)``
nodes are kept, and the surviving node features are gated by ``tanh`` of
their scores.  Readout (Eq. 3) reduces node embeddings to one graph vector
by max / mean / sum.
"""

import numpy as np

from repro.nn.layers import GCNConv, Module, normalize_adjacency
from repro.nn.tensor import Tensor


def topk_nodes(scores, num_nodes, ratio):
    """Indices of the kept nodes: top ``ceil(ratio * N)`` by score.

    The single source of truth for SAGPool's selection semantics — stable
    descending argsort (ties keep node order), at least one survivor, kept
    indices re-sorted ascending.  Shared with the batched forward paths in
    :mod:`repro.nn.batch`, whose bit-parity with per-graph pooling depends
    on all call sites selecting identically.
    """
    keep = max(1, int(np.ceil(ratio * num_nodes)))
    order = np.argsort(-scores, kind="stable")
    return np.sort(order[:keep])


class SAGPool(Module):
    """Self-attention graph pooling with top-k node filtering.

    Args:
        channels: node embedding width entering the pool.
        ratio: fraction of nodes kept (the paper uses 0.5).
    """

    def __init__(self, channels, ratio=0.5, rng=None):
        super().__init__()
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"pooling ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self.score_layer = self.register_module(
            "score", GCNConv(channels, 1, rng=rng))

    def forward(self, x, a_norm, adjacency):
        """Pool the graph.

        Args:
            x: (N, C) node embeddings.
            a_norm: normalized adjacency used by the scoring GCN.
            adjacency: raw (binary) adjacency, used to build the pooled
                graph's adjacency.

        Returns:
            (x_pool, a_norm_pool, adj_pool, kept_indices)
        """
        num_nodes = x.shape[0]
        scores = self.score_layer(x, a_norm).reshape(num_nodes)
        kept = topk_nodes(scores.data, num_nodes, self.ratio)
        gate = scores.index_select(kept).tanh().reshape(len(kept), 1)
        x_pool = x.index_select(kept) * gate
        adj_pool = adjacency[kept][:, kept]
        a_norm_pool = normalize_adjacency(adj_pool)
        return x_pool, a_norm_pool, adj_pool, kept


_READOUTS = ("max", "mean", "sum")


class Readout(Module):
    """Graph readout (Eq. 3): aggregate node embeddings to a graph vector."""

    def __init__(self, mode="max"):
        super().__init__()
        if mode not in _READOUTS:
            raise ValueError(f"readout mode must be one of {_READOUTS}")
        self.mode = mode

    def forward(self, x):
        if self.mode == "max":
            return x.max(axis=0)
        if self.mode == "mean":
            return x.mean(axis=0)
        return x.sum(axis=0)


def readout(x, mode="max"):
    """Functional form of :class:`Readout`."""
    return Readout(mode)(Tensor.ensure(x))
