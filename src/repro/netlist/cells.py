"""Gate cell library for gate-level netlists.

Each cell has a name, a fixed number of inputs (``None`` = variadic, at
least two), and a boolean evaluation function used by the logic simulator.
``DFF`` is the single sequential cell (D flip-flop, posedge).
"""

from functools import reduce

from repro.errors import NetlistError


def _reduce_and(values):
    return reduce(lambda a, b: a & b, values)


def _reduce_or(values):
    return reduce(lambda a, b: a | b, values)


def _reduce_xor(values):
    return reduce(lambda a, b: a ^ b, values)


class Cell:
    """A combinational cell type.

    Attributes:
        name: Verilog primitive name (``and``, ``nor``...).
        arity: required input count, or ``None`` for 2+ inputs.
        evaluate: function list[int] -> int over {0, 1}.
    """

    __slots__ = ("name", "arity", "evaluate")

    def __init__(self, name, arity, evaluate):
        self.name = name
        self.arity = arity
        self.evaluate = evaluate

    def check_arity(self, num_inputs):
        if self.arity is None:
            if num_inputs < 1:
                raise NetlistError(f"{self.name} gate needs inputs")
        elif num_inputs != self.arity:
            raise NetlistError(
                f"{self.name} gate needs {self.arity} inputs, got {num_inputs}")


CELLS = {
    "and": Cell("and", None, _reduce_and),
    "or": Cell("or", None, _reduce_or),
    "xor": Cell("xor", None, _reduce_xor),
    "xnor": Cell("xnor", None, lambda v: 1 ^ _reduce_xor(v)),
    "nand": Cell("nand", None, lambda v: 1 ^ _reduce_and(v)),
    "nor": Cell("nor", None, lambda v: 1 ^ _reduce_or(v)),
    "not": Cell("not", 1, lambda v: 1 ^ v[0]),
    "buf": Cell("buf", 1, lambda v: v[0]),
    # mux select semantics: inputs (d0, d1, sel) -> d1 when sel else d0.
    "mux": Cell("mux", 3, lambda v: v[1] if v[2] else v[0]),
}

#: Name of the sequential cell; handled specially by netlist and simulator.
DFF = "dff"

#: Gates that are also Verilog primitives (writable as plain gate insts).
PRIMITIVE_GATES = frozenset(
    {"and", "or", "xor", "xnor", "nand", "nor", "not", "buf"})


def cell(name):
    """Look up a combinational cell by name."""
    try:
        return CELLS[name]
    except KeyError:
        raise NetlistError(f"unknown cell type {name!r}") from None
