"""Gate-level netlist infrastructure: cells, container, builder, Verilog I/O."""

from repro.netlist.cells import CELLS, DFF, PRIMITIVE_GATES, Cell, cell
from repro.netlist.netlist import (
    CONST0,
    CONST1,
    Gate,
    Netlist,
    NetlistBuilder,
)
from repro.netlist.verilog_io import read_netlist, write_netlist

__all__ = [
    "CELLS", "DFF", "PRIMITIVE_GATES", "Cell", "cell",
    "CONST0", "CONST1", "Gate", "Netlist", "NetlistBuilder",
    "read_netlist", "write_netlist",
]
