"""Netlist frontend: gate-level :class:`Netlist` -> typed :class:`GraphIR`.

The lowering mirrors the paper's gate-level workload: every gate instance
becomes one ``cell`` node labeled with its cell-library name (``nand``,
``mux``, ``dff``...), primary inputs/outputs become ``signal`` nodes, and
the constant nets become ``const`` nodes.  Edges follow the dependency
orientation shared with the RTL DFG: a gate depends on the drivers of its
input nets, an output port depends on the gate driving it.

Internal nets are not materialized as nodes — a net is just the wire
between its driver and its readers, so readers connect straight to the
driving gate.  This keeps netlist graphs proportional to gate count and
makes the cell-type histogram the dominant signal, which is what the
netlist featurizer one-hot encodes.
"""

from repro.errors import NetlistError
from repro.ir.graphir import (
    KIND_CELL,
    KIND_CONST,
    KIND_SIGNAL,
    LEVEL_NETLIST,
    GraphIR,
)
from repro.netlist.netlist import CONST0, CONST1


def netlist_to_ir(netlist, name=None):
    """Lower a validated :class:`~repro.netlist.netlist.Netlist` to GraphIR.

    Args:
        netlist: the gate-level netlist (must pass ``validate()``; an
            undriven net raises :class:`~repro.errors.NetlistError`).
        name: override for the graph name (defaults to the module name).

    Returns:
        A :class:`~repro.ir.graphir.GraphIR` with ``level="netlist"``.
    """
    ir = GraphIR(name or netlist.name, level=LEVEL_NETLIST)
    source = {}  # net name -> node id of the value driving it

    for net in netlist.inputs:
        source[net] = ir.add_node(KIND_SIGNAL, "input", net)
    for clk in netlist.clocks:
        if clk not in source:
            source[clk] = ir.add_node(KIND_SIGNAL, "input", clk)

    # All gate nodes are created before any edge so DFF feedback loops
    # (q feeding combinational logic that feeds d) resolve naturally.
    gate_ids = []
    for gate in netlist.gates:
        gate_id = ir.add_node(KIND_CELL, gate.cell, gate.name)
        gate_ids.append(gate_id)
        source[gate.output] = gate_id

    def resolve(net):
        node_id = source.get(net)
        if node_id is not None:
            return node_id
        if net in (CONST0, CONST1):
            source[net] = ir.add_node(KIND_CONST, "const", net)
            return source[net]
        raise NetlistError(
            f"net {net!r} has no driver (validate the netlist first)")

    for gate, gate_id in zip(netlist.gates, gate_ids):
        for net in gate.inputs:
            ir.add_edge(gate_id, resolve(net))

    for net in netlist.outputs:
        driver = source.get(net)
        out_id = ir.add_node(KIND_SIGNAL, "output", net)
        if driver is not None:
            ir.add_edge(out_id, driver)
    return ir
