"""Gate-level netlist container and builder.

A :class:`Netlist` is a flat network of single-bit nets connected by gates
from :mod:`repro.netlist.cells` plus D flip-flops.  It can be levelized for
simulation, written to structural Verilog, and read back by the Verilog
front-end.
"""

from dataclasses import dataclass, field

from repro.errors import NetlistError
from repro.netlist.cells import DFF, PRIMITIVE_GATES, cell

#: Reserved constant nets (driven to fixed values by the simulator).
CONST0 = "1'b0"
CONST1 = "1'b1"


@dataclass
class Gate:
    """One gate instance: ``output = cell(inputs)``.

    For DFFs, ``inputs`` is ``[d, clk]`` and ``output`` is q.
    """

    cell: str
    name: str
    output: str
    inputs: list


@dataclass
class Netlist:
    """A flat single-bit gate-level netlist."""

    name: str
    inputs: list = field(default_factory=list)
    outputs: list = field(default_factory=list)
    gates: list = field(default_factory=list)
    clocks: list = field(default_factory=list)

    # -- construction ------------------------------------------------------
    def add_input(self, net):
        if net in self.inputs:
            raise NetlistError(f"duplicate input {net!r}")
        self.inputs.append(net)
        return net

    def add_output(self, net):
        if net in self.outputs:
            raise NetlistError(f"duplicate output {net!r}")
        self.outputs.append(net)
        return net

    def add_gate(self, cell_name, output, inputs, name=None):
        """Add one gate; returns its output net name."""
        inputs = list(inputs)
        if cell_name == DFF:
            if len(inputs) != 2:
                raise NetlistError("dff needs inputs [d, clk]")
            clk = inputs[1]
            if clk not in self.clocks:
                self.clocks.append(clk)
        else:
            cell(cell_name).check_arity(len(inputs))
        if name is None:
            name = f"g{len(self.gates)}"
        self.gates.append(Gate(cell_name, name, output, inputs))
        return output

    # -- structure queries --------------------------------------------------
    @property
    def num_gates(self):
        return len(self.gates)

    def nets(self):
        """All net names appearing anywhere in the netlist."""
        names = set(self.inputs) | set(self.outputs)
        for gate in self.gates:
            names.add(gate.output)
            names.update(gate.inputs)
        names.discard(CONST0)
        names.discard(CONST1)
        return names

    def drivers(self):
        """net -> driving Gate (inputs and constants have no driver)."""
        driver_map = {}
        for gate in self.gates:
            if gate.output in driver_map:
                raise NetlistError(f"net {gate.output!r} has multiple drivers")
            driver_map[gate.output] = gate
        return driver_map

    def readers(self):
        """net -> list of ``(gate, pin_index)`` pairs reading it.

        Primary outputs are not readers; combine with ``outputs`` when a
        transform needs the full fanout of a net (the retiming and
        Trojan attack stages do).
        """
        reader_map = {}
        for gate in self.gates:
            for pin, net in enumerate(gate.inputs):
                reader_map.setdefault(net, []).append((gate, pin))
        return reader_map

    def validate(self):
        """Check structural sanity; raises NetlistError on problems."""
        driver_map = self.drivers()
        driven_inputs = set(self.inputs) & set(driver_map)
        if driven_inputs:
            raise NetlistError(f"primary inputs driven: {sorted(driven_inputs)}")
        known = (set(self.inputs) | set(driver_map)
                 | {CONST0, CONST1} | set(self.clocks))
        for gate in self.gates:
            for net in gate.inputs:
                if net not in known:
                    raise NetlistError(
                        f"gate {gate.name!r} reads undriven net {net!r}")
        for net in self.outputs:
            if net not in known:
                raise NetlistError(f"output {net!r} is undriven")
        return True

    def is_combinational(self):
        return not any(gate.cell == DFF for gate in self.gates)

    def levelize(self):
        """Topologically order combinational gates (DFF outputs are sources).

        Returns:
            list of gates in evaluation order.

        Raises:
            NetlistError: on a combinational cycle.
        """
        order = []
        ready = set(self.inputs) | {CONST0, CONST1} | set(self.clocks)
        for gate in self.gates:
            if gate.cell == DFF:
                ready.add(gate.output)
        pending = [g for g in self.gates if g.cell != DFF]
        while pending:
            progressed = False
            remaining = []
            for gate in pending:
                if all(net in ready for net in gate.inputs):
                    order.append(gate)
                    ready.add(gate.output)
                    progressed = True
                else:
                    remaining.append(gate)
            if not progressed:
                cyclic = sorted(g.name for g in remaining)[:5]
                raise NetlistError(f"combinational cycle near gates {cyclic}")
            pending = remaining
        return order

    def stats(self):
        """Gate-count summary by cell type."""
        counts = {}
        for gate in self.gates:
            counts[gate.cell] = counts.get(gate.cell, 0) + 1
        return {
            "name": self.name,
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "gates": len(self.gates),
            "cells": counts,
        }

    def copy(self, name=None):
        """Deep copy (gates are re-created)."""
        out = Netlist(name or self.name, list(self.inputs),
                      list(self.outputs), clocks=list(self.clocks))
        out.gates = [Gate(g.cell, g.name, g.output, list(g.inputs))
                     for g in self.gates]
        return out


class NetlistBuilder:
    """Fluent helper for constructing netlists programmatically.

    Fresh intermediate nets are generated with :meth:`net`; gate helpers
    (:meth:`and_`, :meth:`xor_`...) create the net, add the gate, and return
    the net name, so expressions compose naturally::

        s = b.xor_(a, b.xor_(x, y))
    """

    def __init__(self, name, prefix="n"):
        self.netlist = Netlist(name)
        self._prefix = prefix
        self._counter = 0
        self._reserved = set()

    def reserve(self, names):
        """Mark net names as taken so :meth:`net` never hands them out.

        The synthesizer reserves every declared signal (and its blasted
        ``name_i`` bits) up front: structural sources may already contain
        wires named like the builder's fresh nets (``xor_0``, ``and_3``
        ...), e.g. when re-synthesizing a netlist this builder produced.
        """
        self._reserved.update(names)

    def is_reserved(self, name):
        """Whether ``name`` was reserved (i.e. is a declared signal)."""
        return name in self._reserved

    def net(self, hint=None):
        """A fresh unique net name."""
        base = hint if hint else self._prefix
        name = f"{base}_{self._counter}"
        self._counter += 1
        while name in self._reserved:
            name = f"{base}_{self._counter}"
            self._counter += 1
        return name

    def inputs(self, *names):
        for name in names:
            self.netlist.add_input(name)
        return list(names)

    def input_bus(self, base, width):
        """Declare ``width`` input bits named ``base_0 .. base_{w-1}``."""
        return [self.netlist.add_input(f"{base}_{i}") for i in range(width)]

    def outputs(self, *names):
        for name in names:
            self.netlist.add_output(name)
        return list(names)

    def output_bus(self, base, width):
        return [self.netlist.add_output(f"{base}_{i}") for i in range(width)]

    def gate(self, cell_name, inputs, output=None):
        output = output if output is not None else self.net(cell_name)
        return self.netlist.add_gate(cell_name, output, inputs)

    def and_(self, *ins, out=None):
        return self.gate("and", list(ins), out)

    def or_(self, *ins, out=None):
        return self.gate("or", list(ins), out)

    def xor_(self, *ins, out=None):
        return self.gate("xor", list(ins), out)

    def xnor_(self, *ins, out=None):
        return self.gate("xnor", list(ins), out)

    def nand_(self, *ins, out=None):
        return self.gate("nand", list(ins), out)

    def nor_(self, *ins, out=None):
        return self.gate("nor", list(ins), out)

    def not_(self, a, out=None):
        return self.gate("not", [a], out)

    def buf_(self, a, out=None):
        return self.gate("buf", [a], out)

    def mux_(self, d0, d1, sel, out=None):
        return self.gate("mux", [d0, d1, sel], out)

    def dff_(self, d, clk, out=None):
        return self.gate(DFF, [d, clk], out)

    # -- word-level helpers (lists of nets, LSB first) --------------------
    def ripple_adder(self, a_bits, b_bits, carry_in=CONST0):
        """Full ripple-carry adder; returns (sum_bits, carry_out)."""
        if len(a_bits) != len(b_bits):
            raise NetlistError("adder operand widths differ")
        carry = carry_in
        sums = []
        for a, b in zip(a_bits, b_bits):
            axb = self.xor_(a, b)
            sums.append(self.xor_(axb, carry))
            carry = self.or_(self.and_(a, b), self.and_(axb, carry))
        return sums, carry

    def mux_bus(self, d0_bits, d1_bits, sel):
        return [self.mux_(d0, d1, sel) for d0, d1 in zip(d0_bits, d1_bits)]

    def build(self):
        """Validate and return the finished netlist."""
        self.netlist.validate()
        return self.netlist
