"""Structural-Verilog writer/reader for gate-level netlists.

The writer emits one flat module using gate primitives; ``mux`` cells
become ternary assigns (which the synthesizer lowers straight back to a
mux cell) and ``dff`` cells become instances of a ``DFF_POS`` library
module whose definition is appended, so the emitted file is
self-contained, flows straight through the DFG pipeline, and
re-synthesizes gate-for-gate.  The reader also accepts the retired
``MUX2`` library-instance form older files used for mux cells.
"""

from repro.errors import NetlistError
from repro.netlist.cells import DFF, PRIMITIVE_GATES
from repro.netlist.netlist import CONST0, CONST1, Gate, Netlist
from repro.verilog import ast_nodes as ast
from repro.verilog.parser import parse

def _net_text(net):
    if net == CONST0:
        return "1'b0"
    if net == CONST1:
        return "1'b1"
    return net


def write_netlist(netlist):
    """Render a :class:`Netlist` as self-contained structural Verilog."""
    ports = [f"input {name}" for name in netlist.inputs]
    ports += [f"output {name}" for name in netlist.outputs]
    lines = [f"module {netlist.name} ({', '.join(ports)});"]
    io_nets = set(netlist.inputs) | set(netlist.outputs)
    flop_outputs = [g.output for g in netlist.gates if g.cell == DFF]
    internal = sorted(netlist.nets() - io_nets)
    registered = set(flop_outputs)
    for net in internal:
        if net not in registered:
            lines.append(f"  wire {net};")
    for net in flop_outputs:
        lines.append(f"  reg {net};")
    flops_by_clock = {}
    for gate in netlist.gates:
        if gate.cell in PRIMITIVE_GATES:
            args = ", ".join([_net_text(gate.output)]
                             + [_net_text(n) for n in gate.inputs])
            lines.append(f"  {gate.cell} {gate.name} ({args});")
        elif gate.cell == "mux":
            # A ternary assign, not a library-module instance: the
            # synthesizer lowers ternaries back to a single mux cell, so
            # write -> parse -> synthesize round-trips gate-for-gate (a
            # mux library module would be flattened into and/or/not
            # gates and round-tripped graphs would stop matching fresh
            # ones).
            d0, d1, sel = (_net_text(n) for n in gate.inputs)
            lines.append(f"  assign {_net_text(gate.output)} = "
                         f"{sel} ? {d1} : {d0};")
        elif gate.cell == DFF:
            # Collected into one native always block per clock: module
            # instances would be flattened with port-glue buffers on
            # re-synthesis, inflating round-tripped graphs.
            flops_by_clock.setdefault(gate.inputs[1], []).append(gate)
        else:
            raise NetlistError(f"cannot write cell {gate.cell!r}")
    for clock in sorted(flops_by_clock):
        lines.append(f"  always @(posedge {clock}) begin")
        for gate in flops_by_clock[clock]:
            lines.append(f"    {_net_text(gate.output)} <= "
                         f"{_net_text(gate.inputs[0])};")
        lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _expr_net(expr):
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.BasedConst):
        return CONST1 if expr.value else CONST0
    if isinstance(expr, ast.IntConst):
        return CONST1 if expr.value else CONST0
    raise NetlistError(f"netlist reader expects plain nets, got {expr}")


def read_netlist(text, name=None):
    """Parse structural Verilog (as written by :func:`write_netlist`).

    Only single-bit nets, gate primitives, and the MUX2/DFF_POS library
    modules are accepted.
    """
    source = parse(text)
    modules = {m.name: m for m in source.modules}
    candidates = [m for m in source.modules
                  if m.name not in ("MUX2", "DFF_POS")]
    if name is not None:
        if name not in modules:
            raise NetlistError(f"module {name!r} not found")
        module = modules[name]
    elif len(candidates) == 1:
        module = candidates[0]
    else:
        raise NetlistError("expected exactly one netlist module")

    netlist = Netlist(module.name)
    for port in module.ports:
        if port.width is not None:
            raise NetlistError(f"port {port.name!r} is a bus; flatten first")
        if port.direction == "input":
            netlist.add_input(port.name)
        else:
            netlist.add_output(port.name)
    for item in module.items:
        if isinstance(item, ast.NetDecl):
            continue
        if isinstance(item, ast.Assign):
            # The writer's mux form: ``assign y = sel ? d1 : d0;``.
            if not isinstance(item.rhs, ast.Ternary):
                raise NetlistError(
                    f"netlist reader expects only ternary assigns, "
                    f"got {item.rhs}")
            netlist.add_gate("mux", _expr_net(item.lhs),
                             [_expr_net(item.rhs.false_value),
                              _expr_net(item.rhs.true_value),
                              _expr_net(item.rhs.cond)])
        elif isinstance(item, ast.Always):
            # The writer's flop form: one always block per clock of
            # plain ``q <= d;`` nonblocking assigns.
            if (len(item.sens_list) != 1
                    or item.sens_list[0].edge != "posedge"):
                raise NetlistError("netlist reader expects a single "
                                   "posedge clock per always block")
            clock = _expr_net(item.sens_list[0].signal)
            statements = (item.statement.statements
                          if isinstance(item.statement, ast.Block)
                          else [item.statement])
            for statement in statements:
                if not isinstance(statement, ast.NonblockingAssign):
                    raise NetlistError("netlist reader expects only "
                                       "nonblocking flop assigns")
                netlist.add_gate(DFF, _expr_net(statement.lhs),
                                 [_expr_net(statement.rhs), clock])
        elif isinstance(item, ast.GateInstance):
            output = _expr_net(item.args[0])
            inputs = [_expr_net(a) for a in item.args[1:]]
            netlist.add_gate(item.gate, output, inputs, name=item.name)
        elif isinstance(item, ast.ModuleInstance):
            conns = {c.port: _expr_net(c.expr) for c in item.connections}
            if item.module == "MUX2":
                netlist.add_gate("mux", conns["y"],
                                 [conns["d0"], conns["d1"], conns["sel"]],
                                 name=item.name)
            elif item.module == "DFF_POS":
                netlist.add_gate(DFF, conns["q"], [conns["d"], conns["clk"]],
                                 name=item.name)
            else:
                raise NetlistError(f"unknown library module {item.module!r}")
        else:
            raise NetlistError(
                f"unexpected item {type(item).__name__} in netlist module")
    netlist.validate()
    return netlist
