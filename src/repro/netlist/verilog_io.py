"""Structural-Verilog writer/reader for gate-level netlists.

The writer emits one flat module using gate primitives; ``mux`` and ``dff``
cells become instances of library modules (``MUX2``, ``DFF_POS``) whose
definitions are appended, so the emitted file is self-contained and flows
straight through the DFG pipeline.
"""

from repro.errors import NetlistError
from repro.netlist.cells import DFF, PRIMITIVE_GATES
from repro.netlist.netlist import CONST0, CONST1, Gate, Netlist
from repro.verilog import ast_nodes as ast
from repro.verilog.parser import parse

_MUX_MODULE = """module MUX2(input d0, input d1, input sel, output y);
  wire nsel, t0, t1;
  not (nsel, sel);
  and (t0, d0, nsel);
  and (t1, d1, sel);
  or (y, t0, t1);
endmodule"""

_DFF_MODULE = """module DFF_POS(input d, input clk, output reg q);
  always @(posedge clk)
    q <= d;
endmodule"""


def _net_text(net):
    if net == CONST0:
        return "1'b0"
    if net == CONST1:
        return "1'b1"
    return net


def write_netlist(netlist):
    """Render a :class:`Netlist` as self-contained structural Verilog."""
    ports = [f"input {name}" for name in netlist.inputs]
    ports += [f"output {name}" for name in netlist.outputs]
    lines = [f"module {netlist.name} ({', '.join(ports)});"]
    io_nets = set(netlist.inputs) | set(netlist.outputs)
    internal = sorted(netlist.nets() - io_nets)
    for net in internal:
        lines.append(f"  wire {net};")
    uses_mux = False
    uses_dff = False
    for gate in netlist.gates:
        if gate.cell in PRIMITIVE_GATES:
            args = ", ".join([_net_text(gate.output)]
                             + [_net_text(n) for n in gate.inputs])
            lines.append(f"  {gate.cell} {gate.name} ({args});")
        elif gate.cell == "mux":
            uses_mux = True
            d0, d1, sel = (_net_text(n) for n in gate.inputs)
            lines.append(
                f"  MUX2 {gate.name} (.d0({d0}), .d1({d1}), .sel({sel}), "
                f".y({_net_text(gate.output)}));")
        elif gate.cell == DFF:
            uses_dff = True
            d, clk = (_net_text(n) for n in gate.inputs)
            lines.append(
                f"  DFF_POS {gate.name} (.d({d}), .clk({clk}), "
                f".q({_net_text(gate.output)}));")
        else:
            raise NetlistError(f"cannot write cell {gate.cell!r}")
    lines.append("endmodule")
    text = "\n".join(lines)
    if uses_mux:
        text += "\n\n" + _MUX_MODULE
    if uses_dff:
        text += "\n\n" + _DFF_MODULE
    return text + "\n"


def _expr_net(expr):
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.BasedConst):
        return CONST1 if expr.value else CONST0
    if isinstance(expr, ast.IntConst):
        return CONST1 if expr.value else CONST0
    raise NetlistError(f"netlist reader expects plain nets, got {expr}")


def read_netlist(text, name=None):
    """Parse structural Verilog (as written by :func:`write_netlist`).

    Only single-bit nets, gate primitives, and the MUX2/DFF_POS library
    modules are accepted.
    """
    source = parse(text)
    modules = {m.name: m for m in source.modules}
    candidates = [m for m in source.modules
                  if m.name not in ("MUX2", "DFF_POS")]
    if name is not None:
        if name not in modules:
            raise NetlistError(f"module {name!r} not found")
        module = modules[name]
    elif len(candidates) == 1:
        module = candidates[0]
    else:
        raise NetlistError("expected exactly one netlist module")

    netlist = Netlist(module.name)
    for port in module.ports:
        if port.width is not None:
            raise NetlistError(f"port {port.name!r} is a bus; flatten first")
        if port.direction == "input":
            netlist.add_input(port.name)
        else:
            netlist.add_output(port.name)
    for item in module.items:
        if isinstance(item, ast.NetDecl):
            continue
        if isinstance(item, ast.GateInstance):
            output = _expr_net(item.args[0])
            inputs = [_expr_net(a) for a in item.args[1:]]
            netlist.add_gate(item.gate, output, inputs, name=item.name)
        elif isinstance(item, ast.ModuleInstance):
            conns = {c.port: _expr_net(c.expr) for c in item.connections}
            if item.module == "MUX2":
                netlist.add_gate("mux", conns["y"],
                                 [conns["d0"], conns["d1"], conns["sel"]],
                                 name=item.name)
            elif item.module == "DFF_POS":
                netlist.add_gate(DFF, conns["q"], [conns["d"], conns["clk"]],
                                 name=item.name)
            else:
                raise NetlistError(f"unknown library module {item.module!r}")
        else:
            raise NetlistError(
                f"unexpected item {type(item).__name__} in netlist module")
    netlist.validate()
    return netlist
