"""Staged attack pipelines with equivalence-checked provenance.

Every attack in :mod:`repro.attacks` is an explicit multi-stage flow:
named stages, one artifact per stage, and a provenance chain recording
each stage's derived seed, gate count, and artifact hash.  The chain
serves two purposes:

* **auditability** — :func:`verify_provenance` recomputes the final
  artifact hash and the chain hash, refusing loudly (``EvalError``)
  when a suspect's source or its recorded history has been tampered
  with;
* **seed hygiene** — each stage draws its randomness from
  :func:`derive_stage_seed` (a hash of the parent seed and the stage
  *name*), so two stages of one pipeline can never consume identical
  RNG streams even when they share transform code.

Semantics-preserving stages are random-vector equivalence-checked at
run time when the pipeline is constructed with ``check=True``; a failed
check aborts generation rather than emitting a mislabeled suspect.
"""

import hashlib
import json

from repro.errors import EvalError
from repro.netlist.verilog_io import write_netlist
from repro.sim.equivalence import check_netlists_equivalent


class AttackNotApplicable(EvalError):
    """The attack cannot be staged on this design (e.g. retiming a
    combinational netlist).  Scenario generators skip such designs."""


def derive_stage_seed(parent_seed, stage_name):
    """Child seed for one named stage of a pipeline.

    Hash of ``parent_seed`` and the stage name — distinct stages of the
    same pipeline get distinct, order-independent RNG streams.
    """
    digest = hashlib.blake2b(f"{parent_seed}:{stage_name}".encode(),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big") % (2 ** 31)


def artifact_hash(source):
    """sha256 hex digest of a Verilog artifact's text."""
    return hashlib.sha256(source.encode()).hexdigest()


def netlist_hash(netlist):
    """Artifact hash of a netlist as it would be written to Verilog."""
    return artifact_hash(write_netlist(netlist))


def chain_hash(stages):
    """Order-sensitive digest over a pipeline's stage records."""
    digest = hashlib.sha256()
    for record in stages:
        digest.update(json.dumps(record, sort_keys=True,
                                 default=str).encode())
    return digest.hexdigest()


def verify_provenance(source, provenance):
    """Check a suspect's source text against its provenance chain.

    Raises:
        EvalError: when the source does not hash to the final stage's
            recorded artifact, or the chain hash does not match the
            stage records — both mean the artifact or its history was
            corrupted after generation.
    """
    stages = provenance.get("stages") or []
    if not stages or "chain_hash" not in provenance:
        raise EvalError("provenance has no stage chain to verify")
    expected = stages[-1].get("artifact_sha256")
    actual = artifact_hash(source)
    if actual != expected:
        raise EvalError(
            f"corrupted attack artifact: source hashes to {actual[:12]}..., "
            f"final stage {stages[-1].get('stage')!r} recorded "
            f"{str(expected)[:12]}...")
    recomputed = chain_hash(stages)
    if recomputed != provenance["chain_hash"]:
        raise EvalError(
            f"provenance chain hash mismatch: recorded "
            f"{provenance['chain_hash'][:12]}..., stage records hash to "
            f"{recomputed[:12]}...")
    return True


class AttackPipeline:
    """Runs named stages over a netlist, accumulating provenance.

    Args:
        attack: attack name (goes into the provenance record).
        netlist: the base (stolen) netlist; never mutated.
        seed: parent seed; every stage derives its own child seed.
        check: when true, each semantics-preserving stage is
            random-vector checked against its predecessor (or a
            caller-supplied view) and a failure raises ``EvalError``.
        vectors: vectors per equivalence check.
    """

    def __init__(self, attack, netlist, seed, check=False, vectors=24):
        self.attack = attack
        self.seed = int(seed)
        self.check = bool(check)
        self.vectors = int(vectors)
        self.netlist = netlist
        self.stages = []

    def stage_seed(self, stage_name):
        return derive_stage_seed(self.seed, stage_name)

    def run_stage(self, stage_name, fn, preserving=True, check_view=None):
        """Run ``fn(netlist, stage_seed) -> netlist`` as one stage.

        Args:
            preserving: whether the stage claims to preserve semantics
                (a preserving stage is equivalence-checked when the
                pipeline has ``check=True``).
            check_view: optional ``(prev, new) -> (ref, view)`` mapping
                the stage's artifacts onto comparable netlists (the
                wrapper stage compares the core *view* of its top, not
                the top itself).
        """
        seed = self.stage_seed(stage_name)
        prev = self.netlist
        new = fn(prev, seed)
        record = {
            "stage": stage_name,
            "seed": seed,
            "gates": new.num_gates,
            "artifact_sha256": netlist_hash(new),
            "equivalence": None,
        }
        if preserving and self.check:
            ref, view = (prev, new) if check_view is None \
                else check_view(prev, new)
            report = check_netlists_equivalent(ref, view,
                                               vectors=self.vectors,
                                               seed=seed)
            if not report.equivalent:
                raise EvalError(
                    f"attack {self.attack!r} stage {stage_name!r} broke "
                    f"semantics (counterexample "
                    f"{report.counterexample!r})")
            record["equivalence"] = {"vectors": report.vectors,
                                     "equivalent": True}
        self.stages.append(record)
        self.netlist = new
        return new

    def provenance(self, **extra):
        """The finished provenance record (chain hash over all stages)."""
        prov = {
            "attack": self.attack,
            "seed": self.seed,
            "stages": [dict(record) for record in self.stages],
            "chain_hash": chain_hash(self.stages),
        }
        prov.update(extra)
        return prov
