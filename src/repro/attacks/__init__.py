"""Composable, seeded attack pipelines for the widened threat model.

Five staged attacks, each an explicit multi-stage flow with per-stage
artifacts and an equivalence-checked provenance chain
(:mod:`repro.attacks.pipeline`):

==============  ====================================================
attack          what the thief does
==============  ====================================================
tech_remap      re-map onto an alternate cell library, then rename
retime          move registers backward across combinational gates
fsm_reencode    invertible linear re-encoding of the state registers
wrapper         inline the core in a generated top with decoy ports
trojan          rare-trigger payload XORed onto a stolen output
==============  ====================================================

Use :func:`run_attack` (or the ``gnn4ip attack`` CLI) to stage one
attack on a netlist; the evaluation scenarios in
:mod:`repro.eval.scenarios` drive the same registry.
"""

from dataclasses import dataclass, field

from repro.attacks import fsm, remap, retime, trojan, wrapper
from repro.attacks.pipeline import (AttackNotApplicable, AttackPipeline,
                                    artifact_hash, chain_hash,
                                    derive_stage_seed, netlist_hash,
                                    verify_provenance)
from repro.errors import EvalError


@dataclass
class AttackResult:
    """Outcome of one staged attack.

    Attributes:
        attack: registry name.
        netlist: the final artifact (what the thief ships).
        provenance: seeds, stage chain, chain hash, attack extras.
        comparison: netlist to equivalence-check against the base when
            the artifact's interface differs from it (the wrapper's
            core view); ``None`` means the artifact itself compares.
        semantics_preserving: whether the final artifact preserves the
            base design's behaviour (False for the Trojan).
        trigger: Trojan only — ``{input: value}`` asserting the payload.
    """

    attack: str
    netlist: object
    provenance: dict = field(default_factory=dict)
    comparison: object = None
    semantics_preserving: bool = True
    trigger: dict = None

    @property
    def check_netlist(self):
        """The netlist equivalence checks should compare to the base."""
        return self.comparison if self.comparison is not None \
            else self.netlist


#: Registry of staged attacks, in report order.
ATTACKS = {
    "tech_remap": remap.run,
    "retime": retime.run,
    "fsm_reencode": fsm.run,
    "wrapper": wrapper.run,
    "trojan": trojan.run,
}


def attack_names():
    """All registered attack names, in order."""
    return list(ATTACKS)


def run_attack(attack, netlist, seed, check=False, vectors=24, **options):
    """Stage one named attack on a netlist.

    Args:
        attack: an :data:`ATTACKS` key.
        netlist: the base (stolen) netlist; never mutated.
        seed: parent seed; stages derive child seeds from it.
        check: run generation-time equivalence (or trojan on/off)
            checks; failures raise ``EvalError``.
        vectors: vectors per check.
        options: attack-specific knobs (``library=``, ``max_moves=``,
            ``trigger_width=``, ``name=``...).

    Returns:
        :class:`AttackResult`.

    Raises:
        EvalError: unknown attack name, or a failed check.
        AttackNotApplicable: the design cannot host this attack.
    """
    if attack not in ATTACKS:
        raise EvalError(
            f"unknown attack {attack!r}; known: {attack_names()}")
    return ATTACKS[attack](netlist, seed, check=check, vectors=vectors,
                           **options)


__all__ = [
    "ATTACKS", "AttackNotApplicable", "AttackPipeline", "AttackResult",
    "artifact_hash", "attack_names", "chain_hash", "derive_stage_seed",
    "netlist_hash", "run_attack", "verify_provenance",
]
