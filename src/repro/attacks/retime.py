"""Backward-retiming attack: move registers across combinational gates.

A register whose D input is computed by a single gate can be replaced
by one register *per gate input* plus the same gate on the register
outputs — the gate's evaluation moves from "before the clock edge" to
"after it", which preserves the cycle-accurate behaviour as long as the
reset states line up.  Under the repo's reset-to-0 model that holds
exactly for gates with ``g(0, ..., 0) = 0``, so moves are restricted to
``and`` / ``or`` / ``xor`` / ``buf`` / ``mux`` drivers (the classic
forward-lag subset of Leiserson-Saxe retiming; a mux with all-zero
inputs selects its zero d0 leg, so the synthesizer's folded synchronous
resets retime safely too).

The move changes the register count and the sequential structure while
keeping I/O behaviour identical from reset — something plain netlist
obfuscation never touches.
"""

import numpy as np

from repro.attacks.pipeline import AttackNotApplicable, AttackPipeline
from repro.netlist.cells import DFF
from repro.netlist.netlist import Netlist
from repro.obfuscate.transforms import obfuscate

#: Gate types safe to retime across under reset-to-0 semantics
#: (all satisfy g(0, ..., 0) = 0, so the moved registers' reset state
#: reproduces the original register's reset state combinationally).
RETIMABLE_CELLS = frozenset({"and", "or", "xor", "buf", "mux"})


def retime_candidates(netlist):
    """``(dff_gate, driver_gate)`` pairs eligible for a backward move.

    Eligible: the DFF's D net is driven by a retimable gate, feeds only
    that DFF, is not a primary output, and the driver reads no clock.
    """
    drivers = netlist.drivers()
    readers = netlist.readers()
    outputs = set(netlist.outputs)
    clocks = set(netlist.clocks)
    candidates = []
    for gate in netlist.gates:
        if gate.cell != DFF:
            continue
        d_net = gate.inputs[0]
        driver = drivers.get(d_net)
        if driver is None or driver.cell not in RETIMABLE_CELLS:
            continue
        if d_net in outputs or len(readers.get(d_net, [])) != 1:
            continue
        if any(net in clocks for net in driver.inputs):
            continue
        candidates.append((gate, driver))
    return candidates


def retime_backward(netlist, seed, max_moves=4, name=None):
    """Apply up to ``max_moves`` backward register moves.

    Returns:
        ``(retimed_netlist, moves)`` where ``moves`` records each moved
        register (original name, driver cell, registers created).

    Raises:
        AttackNotApplicable: when the design has no eligible register.
    """
    candidates = retime_candidates(netlist)
    if not candidates:
        raise AttackNotApplicable(
            f"design {netlist.name!r} has no retimable register")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(candidates))
    chosen = [candidates[int(i)] for i in order[:max_moves]]

    used = netlist.nets() | set(netlist.clocks)
    counter = 0

    def fresh():
        nonlocal counter
        net = f"rt_{counter}"
        counter += 1
        while net in used:
            net = f"rt_{counter}"
            counter += 1
        used.add(net)
        return net

    removed = {id(dff) for dff, _ in chosen} | {id(drv) for _, drv in chosen}
    out = Netlist(name or f"{netlist.name}_rt", list(netlist.inputs),
                  list(netlist.outputs))
    for gate in netlist.gates:
        if id(gate) not in removed:
            out.add_gate(gate.cell, gate.output, list(gate.inputs),
                         name=gate.name)
    moves = []
    gate_counter = 0

    def gate_name():
        nonlocal gate_counter
        gate_counter += 1
        return f"rtg{gate_counter - 1}"

    for dff, driver in chosen:
        clk = dff.inputs[1]
        mapping = {}
        for net in driver.inputs:
            if net not in mapping:
                mapping[net] = out.add_gate(DFF, fresh(), [net, clk],
                                            name=gate_name())
        out.add_gate(driver.cell, dff.output,
                     [mapping[net] for net in driver.inputs],
                     name=gate_name())
        moves.append({"register": dff.output, "cell": driver.cell,
                      "registers_created": len(mapping)})
    out.validate()
    return out, moves


def run(netlist, seed, check=False, vectors=24, max_moves=4, name=None):
    """Stage the retiming attack; returns an ``AttackResult``."""
    from repro.attacks import AttackResult

    pipe = AttackPipeline("retime", netlist, seed, check=check,
                          vectors=vectors)
    final_name = name or f"{netlist.name}_rt"
    holder = {}

    def _retime(nl, stage_seed):
        retimed, moves = retime_backward(nl, stage_seed,
                                         max_moves=max_moves,
                                         name=final_name)
        holder["moves"] = moves
        return retimed

    pipe.run_stage("retime", _retime)
    pipe.run_stage("rename",
                   lambda nl, s: obfuscate(nl, seed=s, transforms=[],
                                           name=final_name))
    return AttackResult(attack="retime", netlist=pipe.netlist,
                        provenance=pipe.provenance(moves=holder["moves"]))
