"""Technology-remapping attack: alternate cell vocabulary + rename.

The thief re-maps the stolen netlist onto a different cell library
(NAND-only, NOR-only, or AND/NOT "AIG" style — see
:mod:`repro.synth.techmap`), then launders every internal name.  The
function is preserved bit-for-bit but the gate-type histogram and the
connectivity texture change completely — the classic between-synthesis
laundering step.
"""

import numpy as np

from repro.attacks.pipeline import AttackPipeline, derive_stage_seed
from repro.obfuscate.transforms import obfuscate
from repro.synth.techmap import map_netlist

#: Deterministic library rotation order for seed-chosen remaps.
LIB_ORDER = ("nand", "nor", "aig")


def run(netlist, seed, check=False, vectors=24, library=None, name=None):
    """Stage the tech-remap attack; returns an ``AttackResult``.

    Args:
        library: target vocabulary; ``None`` picks one from the seed.
    """
    from repro.attacks import AttackResult

    pipe = AttackPipeline("tech_remap", netlist, seed, check=check,
                          vectors=vectors)
    if library is None:
        rng = np.random.default_rng(derive_stage_seed(seed, "library"))
        library = LIB_ORDER[int(rng.integers(0, len(LIB_ORDER)))]
    final_name = name or f"{netlist.name}_tm"
    pipe.run_stage(f"map:{library}",
                   lambda nl, s: map_netlist(nl, library, name=final_name))
    pipe.run_stage("rename",
                   lambda nl, s: obfuscate(nl, seed=s, transforms=[],
                                           name=final_name))
    return AttackResult(attack="tech_remap", netlist=pipe.netlist,
                        provenance=pipe.provenance(library=library))
