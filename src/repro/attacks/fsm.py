"""FSM re-encoding attack: invertible linear re-encoding of state bits.

The thief detects the state registers (flops that feed other flops'
next-state logic through combinational paths) and replaces their
encoding ``q`` with ``p = A q`` for a random invertible matrix ``A``
over GF(2): the new flops register XOR combinations of the original
next-state nets, and XOR/buf decode gates reconstruct every original
state bit for the untouched downstream logic.  Because ``A`` is linear
and invertible the reset state maps to itself (``A 0 = 0``) and the
machine is cycle-for-cycle equivalent — but the state registers, their
feedback structure, and the gate texture around them all change.
"""

import numpy as np

from repro.attacks.pipeline import AttackNotApplicable, AttackPipeline
from repro.netlist.cells import DFF
from repro.netlist.netlist import Netlist
from repro.obfuscate.transforms import obfuscate


def detect_state_registers(netlist):
    """Flops that participate in state feedback, grouped by clock.

    A flop is a *state register* when its output reaches some flop's D
    input through combinational logic (including itself — a counter bit
    feeding its own increment).  Falls back to all flops of the largest
    clock group when no feedback exists.

    Returns:
        list of DFF gates (netlist order), all sharing one clock.
    """
    drivers = netlist.drivers()
    flops = [g for g in netlist.gates if g.cell == DFF]
    if not flops:
        return []
    flop_outputs = {g.output for g in flops}
    state = set()
    for flop in flops:
        stack = [flop.inputs[0]]
        seen = set()
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            if net in flop_outputs:
                state.add(net)
                continue
            driver = drivers.get(net)
            if driver is not None and driver.cell != DFF:
                stack.extend(driver.inputs)
    regs = [g for g in flops if g.output in state]
    if not regs:
        regs = flops
    by_clock = {}
    for gate in regs:
        by_clock.setdefault(gate.inputs[1], []).append(gate)
    # Largest clock group wins; ties break on clock name for determinism.
    best = max(sorted(by_clock), key=lambda clk: len(by_clock[clk]))
    return by_clock[best]


def _gf2_invertible(rng, n):
    """A random invertible n x n matrix over GF(2) and its inverse."""
    for _ in range(256):
        matrix = rng.integers(0, 2, size=(n, n), dtype=np.int64)
        inverse = _gf2_inverse(matrix)
        if inverse is not None:
            return matrix, inverse
    raise AttackNotApplicable(
        f"could not draw an invertible GF(2) matrix of size {n}")


def _gf2_inverse(matrix):
    """Inverse of a GF(2) matrix via Gaussian elimination, or None."""
    n = matrix.shape[0]
    work = matrix.copy() % 2
    inv = np.eye(n, dtype=np.int64)
    for col in range(n):
        pivot = None
        for row in range(col, n):
            if work[row, col]:
                pivot = row
                break
        if pivot is None:
            return None
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inv[[col, pivot]] = inv[[pivot, col]]
        for row in range(n):
            if row != col and work[row, col]:
                work[row] = (work[row] + work[col]) % 2
                inv[row] = (inv[row] + inv[col]) % 2
    return inv


def reencode_state(netlist, seed, max_group=8, name=None):
    """Re-encode up to ``max_group`` state registers linearly.

    Returns:
        ``(reencoded_netlist, record)`` where ``record`` describes the
        group and the encoding matrix (rows as bitmask ints).

    Raises:
        AttackNotApplicable: fewer than two state registers share a
            clock (a 1-bit "re-encoding" would be the identity or an
            inverter pair — not a meaningful attack).
    """
    group = detect_state_registers(netlist)[:max_group]
    if len(group) < 2:
        raise AttackNotApplicable(
            f"design {netlist.name!r} has fewer than two state registers")
    rng = np.random.default_rng(seed)
    n = len(group)
    matrix, inverse = _gf2_invertible(rng, n)
    clk = group[0].inputs[1]
    d_nets = [gate.inputs[0] for gate in group]
    q_nets = [gate.output for gate in group]

    used = netlist.nets() | set(netlist.clocks)
    counter = 0

    def fresh(hint):
        nonlocal counter
        net = f"fsm_{hint}_{counter}"
        counter += 1
        while net in used:
            net = f"fsm_{hint}_{counter}"
            counter += 1
        used.add(net)
        return net

    removed = {id(gate) for gate in group}
    out = Netlist(name or f"{netlist.name}_fsm", list(netlist.inputs),
                  list(netlist.outputs))
    for gate in netlist.gates:
        if id(gate) not in removed:
            out.add_gate(gate.cell, gate.output, list(gate.inputs),
                         name=gate.name)
    gate_counter = 0

    def gate_name():
        nonlocal gate_counter
        gate_counter += 1
        return f"fsg{gate_counter - 1}"

    # Encode: p_i registers the XOR of the original next-state nets
    # selected by row i of A.
    p_nets = []
    for i in range(n):
        terms = [d_nets[j] for j in range(n) if matrix[i, j]]
        if len(terms) == 1:
            d_in = terms[0]
        else:
            d_in = out.add_gate("xor", fresh("d"), terms, name=gate_name())
        p_nets.append(out.add_gate(DFF, fresh("p"), [d_in, clk],
                                   name=gate_name()))
    # Decode: each original state net is the XOR of the new registers
    # selected by row i of A^-1 (buf when a single register suffices).
    for i in range(n):
        terms = [p_nets[j] for j in range(n) if inverse[i, j]]
        cell = "buf" if len(terms) == 1 else "xor"
        out.add_gate(cell, q_nets[i], terms, name=gate_name())
    out.validate()
    record = {
        "registers": q_nets,
        "group_size": n,
        "matrix_rows": [int(sum(int(matrix[i, j]) << j for j in range(n)))
                        for i in range(n)],
    }
    return out, record


def run(netlist, seed, check=False, vectors=24, max_group=8, name=None):
    """Stage the FSM re-encoding attack; returns an ``AttackResult``."""
    from repro.attacks import AttackResult

    pipe = AttackPipeline("fsm_reencode", netlist, seed, check=check,
                          vectors=vectors)
    final_name = name or f"{netlist.name}_fsm"
    holder = {}

    def _reencode(nl, stage_seed):
        reencoded, record = reencode_state(nl, stage_seed,
                                           max_group=max_group,
                                           name=final_name)
        holder["record"] = record
        return reencoded

    pipe.run_stage("reencode", _reencode)
    pipe.run_stage("rename",
                   lambda nl, s: obfuscate(nl, seed=s, transforms=[],
                                           name=final_name))
    return AttackResult(attack="fsm_reencode", netlist=pipe.netlist,
                        provenance=pipe.provenance(
                            reencoding=holder["record"]))
