"""Wrapper-theft attack: the stolen core inlined in a generated top.

The thief does not ship the stolen design as-is — they instantiate it
inside a top module of their own: every port renamed and shuffled,
buffer/double-inverter glue between the top's pins and the core, plus
decoy ports wired to throwaway logic so the interface shape no longer
matches the victim's.  The core logic survives intact underneath.

:func:`core_view` undoes the wrapping for verification: renaming the
wrapper's real ports back to the core's names (via the recorded
``port_map``), tying decoy inputs to constant 0, and dropping decoy
outputs yields a netlist with exactly the core's interface, so the
standard equivalence checker can compare it against the original.
"""

import numpy as np

from repro.attacks.pipeline import AttackPipeline
from repro.errors import EvalError
from repro.netlist.netlist import CONST0, CONST1, Netlist
from repro.obfuscate.transforms import obfuscate

_CONSTS = (CONST0, CONST1)


def _free_prefix(taken, base):
    prefix = base
    while any(net.startswith(prefix) for net in taken):
        prefix = "x" + prefix
    return prefix


def wrap_core(netlist, seed, decoy_inputs=2, decoy_outputs=2, name=None):
    """Build a wrapper top around ``netlist``.

    Returns:
        ``(wrapped_netlist, port_map)`` — ``port_map`` maps every real
        wrapper port (inputs, outputs, clocks) to the core port it
        carries; decoy ports are absent from the map.
    """
    rng = np.random.default_rng(seed)
    core_nets = netlist.nets() | set(netlist.clocks)
    prefix = _free_prefix(core_nets, "cw_")
    port_prefix = _free_prefix(core_nets, "w")

    data_inputs = [n for n in netlist.inputs if n not in netlist.clocks]
    clock_inputs = [n for n in netlist.inputs if n in netlist.clocks]

    out = Netlist(name or f"{netlist.name}_top")
    port_map = {}

    # Shuffled, renamed input pins with decoys mixed in.
    total_in = len(data_inputs) + decoy_inputs
    in_names = [f"{port_prefix}i{i}" for i in range(total_in)]
    slots = [int(i) for i in rng.permutation(total_in)]
    shuffled = [data_inputs[int(i)]
                for i in rng.permutation(len(data_inputs))]
    core_slot = dict(zip(slots[:len(shuffled)], shuffled))
    decoy_in = []
    for i, pin in enumerate(in_names):
        out.add_input(pin)
        if i in core_slot:
            port_map[pin] = core_slot[i]
        else:
            decoy_in.append(pin)
    clock_map = {}
    for i, clk in enumerate(clock_inputs):
        pin = f"{port_prefix}clk{i}"
        out.add_input(pin)
        port_map[pin] = clk
        clock_map[clk] = pin

    gate_counter = 0

    def gate_name():
        nonlocal gate_counter
        gate_counter += 1
        return f"wg{gate_counter - 1}"

    used = {prefix + net for net in core_nets}
    used.update(in_names)
    net_counter = 0

    def fresh():
        nonlocal net_counter
        net = f"{port_prefix}n{net_counter}"
        net_counter += 1
        while net in used:
            net = f"{port_prefix}n{net_counter}"
            net_counter += 1
        used.add(net)
        return net

    # Input glue: buffer or double inverter between pin and core net.
    for pin, core_in in sorted(port_map.items()):
        if core_in in clock_map:
            continue
        if int(rng.integers(0, 2)):
            mid = fresh()
            out.add_gate("not", mid, [pin], name=gate_name())
            out.add_gate("not", prefix + core_in, [mid], name=gate_name())
        else:
            out.add_gate("buf", prefix + core_in, [pin], name=gate_name())

    # The core, inlined under the collision-free prefix (clocks pass
    # straight through to the wrapper clock pins — no glue on clocks).
    def core_net(net):
        if net in _CONSTS:
            return net
        if net in clock_map:
            return clock_map[net]
        return prefix + net

    for gate in netlist.gates:
        out.add_gate(gate.cell, core_net(gate.output),
                     [core_net(n) for n in gate.inputs],
                     name=f"{prefix}{gate.name}")

    # Shuffled, renamed output pins with decoys mixed in.
    total_out = len(netlist.outputs) + decoy_outputs
    out_names = [f"{port_prefix}o{i}" for i in range(total_out)]
    oslots = [int(i) for i in rng.permutation(total_out)]
    oshuffled = [netlist.outputs[int(i)]
                 for i in rng.permutation(len(netlist.outputs))]
    out_slot = dict(zip(oslots[:len(oshuffled)], oshuffled))
    decoy_out = []
    for i, pin in enumerate(out_names):
        out.add_output(pin)
        if i in out_slot:
            core_out = out_slot[i]
            port_map[pin] = core_out
            if int(rng.integers(0, 2)):
                mid = fresh()
                out.add_gate("not", mid, [core_net(core_out)],
                             name=gate_name())
                out.add_gate("not", pin, [mid], name=gate_name())
            else:
                out.add_gate("buf", pin, [core_net(core_out)],
                             name=gate_name())
        else:
            decoy_out.append(pin)

    # Decoy outputs compute throwaway functions of the wrapper's own
    # input pins (never core nets, so stripping them never cuts logic).
    decoy_sources = decoy_in if decoy_in else in_names
    for pin in decoy_out:
        picks = [decoy_sources[int(i)]
                 for i in rng.integers(0, len(decoy_sources), size=2)]
        cell = ("xor", "nand", "nor")[int(rng.integers(0, 3))]
        out.add_gate(cell, pin, picks, name=gate_name())

    out.validate()
    return out, port_map


def core_view(wrapped, port_map, name=None):
    """Project a wrapped netlist back onto the core's interface.

    Renames real ports to their core names, ties decoy inputs to
    constant 0, and keeps only mapped outputs — the result has exactly
    the core's I/O and can be equivalence-checked against it.
    """
    missing = [pin for pin in port_map
               if pin not in set(wrapped.inputs) | set(wrapped.outputs)]
    if missing:
        raise EvalError(f"port map names absent from the wrapper: "
                        f"{sorted(missing)}")
    decoys = {pin for pin in wrapped.inputs if pin not in port_map}

    def rename(net):
        if net in decoys:
            return CONST0
        return port_map.get(net, net)

    view = Netlist(name or f"{wrapped.name}_core",
                   [port_map[p] for p in wrapped.inputs if p in port_map],
                   [port_map[p] for p in wrapped.outputs if p in port_map])
    for gate in wrapped.gates:
        view.add_gate(gate.cell, rename(gate.output),
                      [rename(n) for n in gate.inputs], name=gate.name)
    view.validate()
    return view


def run(netlist, seed, check=False, vectors=24, decoy_inputs=2,
        decoy_outputs=2, name=None):
    """Stage the wrapper attack; returns an ``AttackResult``.

    The result's ``comparison`` is the :func:`core_view` of the wrapped
    top, and ``port_map`` is stamped into the provenance.
    """
    from repro.attacks import AttackResult

    pipe = AttackPipeline("wrapper", netlist, seed, check=check,
                          vectors=vectors)
    final_name = name or f"{netlist.name}_top"
    pipe.run_stage("launder",
                   lambda nl, s: obfuscate(nl, seed=s, transforms=[],
                                           name=netlist.name))
    holder = {}

    def _wrap(nl, stage_seed):
        wrapped, port_map = wrap_core(nl, stage_seed,
                                      decoy_inputs=decoy_inputs,
                                      decoy_outputs=decoy_outputs,
                                      name=final_name)
        holder["port_map"] = port_map
        return wrapped

    pipe.run_stage("wrap", _wrap,
                   check_view=lambda prev, new: (
                       prev, core_view(new, holder["port_map"])))
    return AttackResult(attack="wrapper", netlist=pipe.netlist,
                        provenance=pipe.provenance(
                            port_map=holder["port_map"]),
                        comparison=core_view(pipe.netlist,
                                             holder["port_map"]))
