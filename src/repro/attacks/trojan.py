"""Trojan-insertion attack: rare-trigger payload on a stolen design.

The GNN4TJ sibling task's threat: the thief ships the stolen IP almost
intact, but with a hidden modification — here a trigger (AND of a few
primary-input literals) XORed onto one primary output.  Off-trigger the
design is bit-for-bit the original (matched); under the trigger the
payload flips the target output (modified).  The suspect is therefore
labelled pirated but **not** semantics-preserving, and its checks are
inverted: generation verifies the design is equivalent with the trigger
held *off* and provably divergent with it held *on*, via the ``fixed``
input pins of :func:`repro.sim.equivalence.check_netlists_equivalent`.
"""

import numpy as np

from repro.attacks.pipeline import AttackNotApplicable, AttackPipeline
from repro.errors import EvalError
from repro.obfuscate.transforms import obfuscate
from repro.sim.equivalence import check_netlists_equivalent


def insert_trojan(netlist, seed, trigger_width=3, name=None):
    """Graft a rare-trigger XOR payload onto one primary output.

    Returns:
        ``(trojaned_netlist, info)`` — ``info`` records the trigger
        literals (``{input: asserted_value}``), the target output, and
        the payload nets.

    Raises:
        AttackNotApplicable: no data inputs or no gate-driven output to
            attack.
    """
    rng = np.random.default_rng(seed)
    data_inputs = [n for n in netlist.inputs if n not in netlist.clocks]
    drivers = netlist.drivers()
    targets = [n for n in netlist.outputs if n in drivers]
    if not data_inputs or not targets:
        raise AttackNotApplicable(
            f"design {netlist.name!r} has no input/output pair to trojan")
    width = min(trigger_width, len(data_inputs))
    picks = [data_inputs[int(i)]
             for i in rng.permutation(len(data_inputs))[:width]]
    polarities = {net: int(rng.integers(0, 2)) for net in picks}
    target = targets[int(rng.integers(0, len(targets)))]

    out = netlist.copy(name or f"{netlist.name}_tj")
    used = out.nets() | set(out.clocks)
    counter = 0

    def fresh(hint):
        nonlocal counter
        net = f"tj_{hint}_{counter}"
        counter += 1
        while net in used:
            net = f"tj_{hint}_{counter}"
            counter += 1
        used.add(net)
        return net

    # Divert the target's original cone onto a fresh core net: the
    # driver and every internal reader move with it, so only the
    # primary output sees the payload.
    core = fresh("core")
    for gate in out.gates:
        if gate.output == target:
            gate.output = core
        gate.inputs = [core if net == target else net
                       for net in gate.inputs]

    gate_counter = 0

    def gate_name():
        nonlocal gate_counter
        gate_counter += 1
        return f"tjg{gate_counter - 1}"

    literals = []
    for net in picks:
        if polarities[net]:
            literals.append(net)
        else:
            inv = fresh("inv")
            out.add_gate("not", inv, [net], name=gate_name())
            literals.append(inv)
    trig = fresh("trig")
    out.add_gate("and", trig, literals, name=gate_name())
    out.add_gate("xor", target, [core, trig], name=gate_name())
    out.validate()
    info = {
        "trigger": {net: polarities[net] for net in sorted(polarities)},
        "width": width,
        "target": target,
    }
    return out, info


def check_trojan(base, trojaned, trigger, vectors=24, seed=0):
    """Verify the trojan's on/off-trigger contract against the base.

    On-trigger (all literals pinned asserted) the designs must diverge;
    off-trigger (one literal pinned deasserted, rest random) they must
    be equivalent.

    Returns:
        dict summarizing both checks.

    Raises:
        EvalError: either contract is violated.
    """
    on = check_netlists_equivalent(base, trojaned, vectors=vectors,
                                   seed=seed, fixed=trigger)
    if on.equivalent:
        raise EvalError(
            "trojan payload is inert: designs equivalent under the "
            f"asserted trigger {trigger}")
    held_off = sorted(trigger)[0]
    off_fixed = {held_off: trigger[held_off] ^ 1}
    off = check_netlists_equivalent(base, trojaned, vectors=vectors,
                                    seed=seed + 1, fixed=off_fixed)
    if not off.equivalent:
        raise EvalError(
            "trojan is not stealthy: designs diverge with the trigger "
            f"held off ({held_off}={off_fixed[held_off]}), "
            f"counterexample {off.counterexample!r}")
    return {"on_trigger_divergent": True, "off_trigger_equivalent": True,
            "vectors": vectors, "held_off": held_off}


def run(netlist, seed, check=False, vectors=24, trigger_width=3, name=None):
    """Stage the Trojan attack; returns an ``AttackResult``.

    The result's ``trigger`` is the ``{input: value}`` assignment that
    activates the payload; ``semantics_preserving`` is False.
    """
    from repro.attacks import AttackResult

    pipe = AttackPipeline("trojan", netlist, seed, check=check,
                          vectors=vectors)
    final_name = name or f"{netlist.name}_tj"
    pipe.run_stage("launder",
                   lambda nl, s: obfuscate(nl, seed=s, transforms=[],
                                           name=netlist.name))
    holder = {}

    def _insert(nl, stage_seed):
        trojaned, info = insert_trojan(nl, stage_seed,
                                       trigger_width=trigger_width,
                                       name=final_name)
        holder["info"] = info
        return trojaned

    pipe.run_stage("trojan", _insert, preserving=False)
    info = holder["info"]
    trojan_check = None
    if check:
        trojan_check = check_trojan(netlist, pipe.netlist, info["trigger"],
                                    vectors=vectors,
                                    seed=pipe.stage_seed("trojan"))
    return AttackResult(attack="trojan", netlist=pipe.netlist,
                        provenance=pipe.provenance(
                            trojan={**info, "check": trojan_check}),
                        semantics_preserving=False,
                        trigger=dict(info["trigger"]))
