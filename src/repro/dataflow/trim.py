"""Trim phase of the DFG pipeline: remove redundant and disconnected nodes.

Per the paper (§III-B): "the redundant nodes and disconnected subgraphs are
trimmed, and the final DFG is generated".  Concretely:

* collapse pass-through operation nodes (``buf`` and single-operand
  ``concat``) by rewiring their predecessors to their single dependency;
* drop every node not reachable from an output-signal root (unless the
  design has no outputs, in which case all driven signals act as roots).
"""

from repro.dataflow.graph import DFG, KIND_OP, KIND_SIGNAL

_PASS_THROUGH_LABELS = frozenset({"buf", "concat", "uplus"})


def collapse_pass_through(graph):
    """Return a DFG with single-child pass-through op nodes removed."""
    redirect = {}
    for node in graph.nodes:
        if node.kind != KIND_OP or node.label not in _PASS_THROUGH_LABELS:
            continue
        deps = graph.successors(node.node_id)
        if len(deps) == 1:
            redirect[node.node_id] = deps[0]

    def resolve(node_id):
        seen = set()
        while node_id in redirect:
            if node_id in seen:
                break
            seen.add(node_id)
            node_id = redirect[node_id]
        return node_id

    out = DFG(graph.name)
    remap = {}
    for node in graph.nodes:
        if node.node_id in redirect:
            continue
        remap[node.node_id] = out.add_node(node.kind, node.label, node.name)
    for node in graph.nodes:
        if node.node_id in redirect:
            continue
        for dep in graph.successors(node.node_id):
            target = resolve(dep)
            if target in remap and remap[target] != remap[node.node_id]:
                out.add_edge(remap[node.node_id], remap[target])
    return out


def prune_unreachable(graph):
    """Keep only nodes reachable from the DFG roots."""
    roots = graph.roots()
    if not roots:
        # No declared outputs: treat every driven signal as a root so the
        # graph does not vanish (common in testbench-less fragments).
        roots = [n.node_id for n in graph.nodes
                 if n.kind == KIND_SIGNAL and graph.successors(n.node_id)]
    if not roots:
        return graph
    keep = graph.reachable_from(roots)
    if len(keep) == len(graph.nodes):
        return graph
    return graph.subgraph(keep)


def trim(graph):
    """Full trim pass: collapse pass-throughs, then prune unreachable."""
    return prune_unreachable(collapse_pass_through(graph))
