"""Design elaboration: flatten the module hierarchy into one module.

This implements the "flatten the modular codes" step of the paper's
preprocessing phase.  Instances are inlined recursively; instance-local
signals are prefixed with the instance path (``cpu.alu.result``), parameters
are substituted by their constant values, and port connections become
continuous assignments.
"""

import copy

from repro.errors import ElaborationError
from repro.dataflow.consteval import evaluate_const, try_evaluate_const
from repro.verilog import ast_nodes as ast

_MAX_DEPTH = 64


def rewrite_expr(expr, mapping):
    """Return a copy of ``expr`` with identifiers substituted via ``mapping``.

    ``mapping`` maps identifier names to replacement *expressions*.  Names
    absent from the mapping are kept (they are either globals like constants
    or an error caught later).
    """
    if expr is None:
        return None
    if isinstance(expr, ast.Identifier):
        replacement = mapping.get(expr.name)
        if replacement is None:
            return ast.Identifier(expr.name)
        return copy.deepcopy(replacement)
    if isinstance(expr, (ast.IntConst, ast.BasedConst, ast.StringConst)):
        return copy.deepcopy(expr)
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, rewrite_expr(expr.operand, mapping))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, rewrite_expr(expr.left, mapping),
                            rewrite_expr(expr.right, mapping))
    if isinstance(expr, ast.Ternary):
        return ast.Ternary(rewrite_expr(expr.cond, mapping),
                           rewrite_expr(expr.true_value, mapping),
                           rewrite_expr(expr.false_value, mapping))
    if isinstance(expr, ast.Concat):
        return ast.Concat([rewrite_expr(p, mapping) for p in expr.parts])
    if isinstance(expr, ast.Repeat):
        return ast.Repeat(rewrite_expr(expr.count, mapping),
                          rewrite_expr(expr.value, mapping))
    if isinstance(expr, ast.BitSelect):
        return ast.BitSelect(rewrite_expr(expr.base, mapping),
                             rewrite_expr(expr.index, mapping))
    if isinstance(expr, ast.PartSelect):
        return ast.PartSelect(rewrite_expr(expr.base, mapping),
                              rewrite_expr(expr.left, mapping),
                              rewrite_expr(expr.right, mapping), expr.mode)
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(expr.name,
                                [rewrite_expr(a, mapping) for a in expr.args])
    raise ElaborationError(
        f"cannot rewrite expression of type {type(expr).__name__}")


def _rewrite_statement(stmt, mapping):
    if isinstance(stmt, ast.Block):
        return ast.Block([_rewrite_statement(s, mapping)
                          for s in stmt.statements], stmt.name)
    if isinstance(stmt, ast.BlockingAssign):
        return ast.BlockingAssign(rewrite_expr(stmt.lhs, mapping),
                                  rewrite_expr(stmt.rhs, mapping), stmt.line)
    if isinstance(stmt, ast.NonblockingAssign):
        return ast.NonblockingAssign(rewrite_expr(stmt.lhs, mapping),
                                     rewrite_expr(stmt.rhs, mapping),
                                     stmt.line)
    if isinstance(stmt, ast.If):
        else_stmt = (_rewrite_statement(stmt.else_stmt, mapping)
                     if stmt.else_stmt is not None else None)
        return ast.If(rewrite_expr(stmt.cond, mapping),
                      _rewrite_statement(stmt.then_stmt, mapping), else_stmt)
    if isinstance(stmt, ast.Case):
        items = [ast.CaseItem([rewrite_expr(p, mapping) for p in item.patterns],
                              _rewrite_statement(item.statement, mapping))
                 for item in stmt.items]
        return ast.Case(rewrite_expr(stmt.expr, mapping), items, stmt.kind)
    if isinstance(stmt, ast.For):
        return ast.For(_rewrite_statement(stmt.init, mapping),
                       rewrite_expr(stmt.cond, mapping),
                       _rewrite_statement(stmt.step, mapping),
                       _rewrite_statement(stmt.body, mapping))
    raise ElaborationError(
        f"cannot rewrite statement of type {type(stmt).__name__}")


def _rewrite_width(width, param_env):
    """Evaluate a symbolic width with the parameter environment."""
    if width is None:
        return None
    msb = try_evaluate_const(width.msb, param_env)
    lsb = try_evaluate_const(width.lsb, param_env)
    if msb is None or lsb is None:
        raise ElaborationError(
            f"width {width} does not evaluate to constants")
    return ast.Width(ast.IntConst(msb), ast.IntConst(lsb))


def find_top_module(source, top=None):
    """Pick the top module: explicitly named, or never-instantiated one."""
    modules = source.module_map()
    if top is not None:
        if top not in modules:
            raise ElaborationError(f"top module {top!r} not found")
        return modules[top]
    instantiated = set()
    for module in source.modules:
        for item in module.items:
            if isinstance(item, ast.ModuleInstance):
                instantiated.add(item.module)
    candidates = [m for m in source.modules if m.name not in instantiated]
    if not candidates:
        raise ElaborationError("no top-level module (instantiation cycle?)")
    return candidates[0]


class Elaborator:
    """Flattens a multi-module design into a single module."""

    def __init__(self, source):
        self._modules = source.module_map()

    def elaborate(self, top=None):
        """Return a flat :class:`Module` for the chosen top."""
        top_module = find_top_module(
            ast.SourceFile(list(self._modules.values())), top)
        param_env = self._default_params(top_module, {})
        items = self._flatten(top_module, prefix="", param_env=param_env,
                              depth=0)
        ports = []
        for port in top_module.ports:
            width = (_rewrite_width(port.width, param_env)
                     if port.width is not None else None)
            ports.append(ast.Port(port.name, port.direction, width,
                                  port.is_reg, port.signed))
        return ast.Module(name=top_module.name, ports=ports, items=items,
                          params=[], line=top_module.line)

    # ------------------------------------------------------------------
    def _default_params(self, module, overrides):
        env = {}
        for param in module.params:
            if param.name in overrides:
                env[param.name] = overrides[param.name]
            else:
                env[param.name] = evaluate_const(param.value, env)
        for item in module.items:
            if isinstance(item, ast.ParamDecl):
                if item.name in overrides and not item.local:
                    env[item.name] = overrides[item.name]
                else:
                    env[item.name] = evaluate_const(item.value, env)
        return env

    def _local_names(self, module):
        names = set(module.port_names())
        for item in module.items:
            if isinstance(item, ast.NetDecl):
                names.update(item.names)
        return names

    def _flatten(self, module, prefix, param_env, depth):
        if depth > _MAX_DEPTH:
            raise ElaborationError(
                f"instantiation too deep at {module.name!r} (recursion?)")
        mapping = {name: ast.IntConst(value)
                   for name, value in param_env.items()}
        for name in self._local_names(module):
            mapping[name] = ast.Identifier(prefix + name)

        items = []
        for item in module.items:
            if isinstance(item, ast.ParamDecl):
                continue
            if isinstance(item, ast.NetDecl):
                width = _rewrite_width(item.width, param_env)
                names = [prefix + name for name in item.names]
                items.append(ast.NetDecl(item.kind, names, width,
                                         item.signed, item.line))
            elif isinstance(item, ast.Assign):
                items.append(ast.Assign(rewrite_expr(item.lhs, mapping),
                                        rewrite_expr(item.rhs, mapping),
                                        item.line))
            elif isinstance(item, ast.GateInstance):
                args = [rewrite_expr(a, mapping) for a in item.args]
                items.append(ast.GateInstance(item.gate, prefix + item.name,
                                              args, item.line))
            elif isinstance(item, ast.Always):
                sens = [ast.SensItem(s.edge, rewrite_expr(s.signal, mapping))
                        for s in item.sens_list]
                items.append(ast.Always(
                    sens, _rewrite_statement(item.statement, mapping),
                    item.line))
            elif isinstance(item, ast.Initial):
                continue  # initial blocks carry no dataflow
            elif isinstance(item, ast.ModuleInstance):
                items.extend(self._flatten_instance(item, prefix, mapping,
                                                    param_env, depth))
            else:
                raise ElaborationError(
                    f"unsupported module item {type(item).__name__}")
        return items

    def _flatten_instance(self, inst, prefix, mapping, param_env, depth):
        child = self._modules.get(inst.module)
        if child is None:
            raise ElaborationError(
                f"module {inst.module!r} instantiated but not defined")
        child_prefix = f"{prefix}{inst.name}."

        overrides = self._evaluate_overrides(inst, child, param_env)
        child_env = self._default_params(child, overrides)

        items = []
        # Declare child port nets in the flat namespace, then wire them up.
        connections = self._pair_connections(inst, child)
        for port in child.ports:
            width = (_rewrite_width(port.width, child_env)
                     if port.width is not None else None)
            kind = "reg" if port.is_reg else "wire"
            items.append(ast.NetDecl(kind, [child_prefix + port.name], width))
        for port, actual in connections:
            if actual is None:
                continue
            actual_expr = rewrite_expr(actual, mapping)
            port_ref = ast.Identifier(child_prefix + port.name)
            if port.direction == "input":
                items.append(ast.Assign(lhs=port_ref, rhs=actual_expr,
                                        line=inst.line))
            else:  # output / inout: the child drives the parent net
                items.append(ast.Assign(lhs=actual_expr, rhs=port_ref,
                                        line=inst.line))
        items.extend(self._flatten(child, child_prefix, child_env, depth + 1))
        return items

    def _evaluate_overrides(self, inst, child, param_env):
        overrides = {}
        if not inst.param_overrides:
            return overrides
        positional = [c for c in inst.param_overrides if c.port is None]
        if positional and len(positional) == len(inst.param_overrides):
            names = [p.name for p in child.params]
            if len(positional) > len(names):
                raise ElaborationError(
                    f"too many parameter overrides on {inst.name!r}")
            for name, conn in zip(names, positional):
                overrides[name] = evaluate_const(conn.expr, param_env)
        else:
            for conn in inst.param_overrides:
                if conn.port is None:
                    raise ElaborationError(
                        "mixed positional/named parameter overrides")
                overrides[conn.port] = evaluate_const(conn.expr, param_env)
        return overrides

    def _pair_connections(self, inst, child):
        """Return (port, actual_expr) pairs for an instantiation."""
        pairs = []
        named = [c for c in inst.connections if c.port is not None]
        if named and len(named) != len(inst.connections):
            raise ElaborationError(
                f"mixed named/positional connections on {inst.name!r}")
        if named:
            by_name = {c.port: c.expr for c in named}
            unknown = set(by_name) - set(child.port_names())
            if unknown:
                raise ElaborationError(
                    f"instance {inst.name!r} connects unknown ports {unknown}")
            for port in child.ports:
                pairs.append((port, by_name.get(port.name)))
        else:
            if len(inst.connections) > len(child.ports):
                raise ElaborationError(
                    f"too many connections on instance {inst.name!r}")
            for port, conn in zip(child.ports, inst.connections):
                pairs.append((port, conn.expr))
        return pairs


def elaborate(source, top=None):
    """Flatten ``source`` (a SourceFile) into a single module."""
    return Elaborator(source).elaborate(top)
