"""RTL adapter: :class:`DFG` -> plain :class:`GraphIR`.

A DFG already *is* a GraphIR (it subclasses it at the ``rtl`` level), so the
model path accepts DFGs directly.  This adapter exists for the places that
want a *detached plain* IR — the RTL extraction frontend returns one so a
cold extraction and a cache hit (which deserializes to plain GraphIR)
produce the same type, and worker processes ship the lean representation
without the DFG's signal-identity table.
"""

from repro.dataflow.graph import DFG
from repro.ir.graphir import LEVEL_RTL, GraphIR


def dfg_to_ir(dfg):
    """Copy a :class:`~repro.dataflow.graph.DFG` into a plain GraphIR.

    Node ids, kinds, labels, names, and edges are preserved exactly, so
    featurization and adjacency are identical to running on the DFG itself.
    """
    if not isinstance(dfg, DFG):
        raise TypeError(f"expected a DFG, got {type(dfg).__name__}")
    ir = GraphIR(dfg.name, level=LEVEL_RTL)
    for node in dfg.nodes:
        ir.add_node(node.kind, node.label, node.name)
    for src in range(len(dfg)):
        for dst in dfg.successors(src):
            ir.add_edge(src, dst)
    return ir
