"""Data-flow graph (DFG) container.

The DFG follows the paper's definition (§III-B): a rooted directed graph
whose nodes are signals, constants, or operations, with an edge ``u -> v``
whenever the value of ``u`` depends on ``v``.  Output signals are the roots
and input signals the leaves.

Structurally a DFG is a :class:`~repro.ir.graphir.GraphIR` at the ``rtl``
level — it inherits nodes, edges, and adjacency from the IR and layers the
RTL-specific machinery (named-signal identity, role upgrades, root/leaf
queries) on top, so everything downstream of the frontend consumes it
through the GraphIR interface.
"""

from repro.ir.graphir import (
    KIND_CONST,
    KIND_OP,
    KIND_SIGNAL,
    LEVEL_RTL,
    GraphIR,
    IRNode,
)

#: Backwards-compatible alias: DFG vertices are plain IR nodes.
DFGNode = IRNode

__all__ = [
    "DFG", "DFGNode", "GraphIR", "IRNode",
    "KIND_CONST", "KIND_OP", "KIND_SIGNAL", "LEVEL_RTL",
]


class DFG(GraphIR):
    """A data-flow graph with typed nodes and dependency edges.

    Edges run from the dependent node toward the nodes it depends on, so a
    path from an output signal leads to the inputs that feed it.
    """

    def __init__(self, name="dfg"):
        super().__init__(name, level=LEVEL_RTL)
        self._signal_ids = {}     # signal name -> node id

    def _empty_like(self):
        return DFG(self.name)

    # -- construction ------------------------------------------------------
    def add_node(self, kind, label, name=None):
        """Append a node; returns its id.  Signal nodes are registered by
        name so :meth:`add_signal` can merge per-signal dataflow trees."""
        node_id = super().add_node(kind, label, name)
        if kind == KIND_SIGNAL and name is not None:
            self._signal_ids.setdefault(name, node_id)
        return node_id

    def add_signal(self, name, role):
        """Add (or fetch) the unique node for signal ``name``.

        ``role`` is ``input``/``output``/``wire``/``reg``; when the signal
        already exists its role may be upgraded (e.g. wire -> output).
        """
        node_id = self._signal_ids.get(name)
        if node_id is None:
            return self.add_node(KIND_SIGNAL, role, name)
        node = self.nodes[node_id]
        if _ROLE_RANK.get(role, 0) > _ROLE_RANK.get(node.label, 0):
            node.label = role
        return node_id

    # -- queries -------------------------------------------------------------
    def signal_id(self, name):
        """Node id of signal ``name`` (KeyError if absent)."""
        return self._signal_ids[name]

    def has_signal(self, name):
        return name in self._signal_ids

    def roots(self):
        """Output-signal node ids (the DFG roots)."""
        return [n.node_id for n in self.nodes
                if n.kind == KIND_SIGNAL and n.label == "output"]

    def leaves(self):
        """Input-signal node ids (the DFG leaves)."""
        return [n.node_id for n in self.nodes
                if n.kind == KIND_SIGNAL and n.label == "input"]

    def stats(self):
        """Summary dict used in reports and tests."""
        return {
            "name": self.name,
            "nodes": len(self.nodes),
            "edges": self.num_edges,
            "roots": len(self.roots()),
            "leaves": len(self.leaves()),
        }

    def __repr__(self):
        return (f"DFG({self.name!r}, nodes={len(self.nodes)}, "
                f"edges={self.num_edges})")


_ROLE_RANK = {"wire": 1, "reg": 2, "input": 3, "output": 4}
