"""Data-flow graph (DFG) container.

The DFG follows the paper's definition (§III-B): a rooted directed graph
whose nodes are signals, constants, or operations, with an edge ``u -> v``
whenever the value of ``u`` depends on ``v``.  Output signals are the roots
and input signals the leaves.
"""

import networkx as nx
import numpy as np
from scipy import sparse

#: Node kinds.  ``op`` nodes carry an operator label, signal nodes carry a
#: role label (input/output/wire/reg), ``const`` nodes the literal value.
KIND_SIGNAL = "signal"
KIND_OP = "op"
KIND_CONST = "const"


class DFGNode:
    """One vertex of a data-flow graph.

    Attributes:
        node_id: dense integer id, index into :attr:`DFG.nodes`.
        kind: ``signal`` / ``op`` / ``const``.
        label: vocabulary label used for GNN features (e.g. ``xor``,
            ``input``, ``const``).
        name: full hierarchical signal name (signals only) or literal text.
    """

    __slots__ = ("node_id", "kind", "label", "name")

    def __init__(self, node_id, kind, label, name=None):
        self.node_id = node_id
        self.kind = kind
        self.label = label
        self.name = name

    def __repr__(self):
        descr = self.name if self.name else self.label
        return f"DFGNode({self.node_id}, {self.kind}, {descr})"


class DFG:
    """A data-flow graph with typed nodes and dependency edges.

    Edges run from the dependent node toward the nodes it depends on, so a
    path from an output signal leads to the inputs that feed it.
    """

    def __init__(self, name="dfg"):
        self.name = name
        self.nodes = []
        self._succ = []           # adjacency: node -> list of dependencies
        self._pred = []           # reverse adjacency
        self._signal_ids = {}     # signal name -> node id

    # -- construction ------------------------------------------------------
    def add_node(self, kind, label, name=None):
        """Append a node; returns its id."""
        node_id = len(self.nodes)
        self.nodes.append(DFGNode(node_id, kind, label, name))
        self._succ.append([])
        self._pred.append([])
        if kind == KIND_SIGNAL and name is not None:
            self._signal_ids[name] = node_id
        return node_id

    def add_signal(self, name, role):
        """Add (or fetch) the unique node for signal ``name``.

        ``role`` is ``input``/``output``/``wire``/``reg``; when the signal
        already exists its role may be upgraded (e.g. wire -> output).
        """
        node_id = self._signal_ids.get(name)
        if node_id is None:
            return self.add_node(KIND_SIGNAL, role, name)
        node = self.nodes[node_id]
        if _ROLE_RANK.get(role, 0) > _ROLE_RANK.get(node.label, 0):
            node.label = role
        return node_id

    def add_edge(self, src, dst):
        """Record that node ``src`` depends on node ``dst``."""
        if dst not in self._succ[src]:
            self._succ[src].append(dst)
            self._pred[dst].append(src)

    # -- queries -------------------------------------------------------------
    def __len__(self):
        return len(self.nodes)

    @property
    def num_edges(self):
        return sum(len(deps) for deps in self._succ)

    def signal_id(self, name):
        """Node id of signal ``name`` (KeyError if absent)."""
        return self._signal_ids[name]

    def has_signal(self, name):
        return name in self._signal_ids

    def successors(self, node_id):
        """Nodes that ``node_id`` depends on."""
        return list(self._succ[node_id])

    def predecessors(self, node_id):
        """Nodes that depend on ``node_id``."""
        return list(self._pred[node_id])

    def roots(self):
        """Output-signal node ids (the DFG roots)."""
        return [n.node_id for n in self.nodes
                if n.kind == KIND_SIGNAL and n.label == "output"]

    def leaves(self):
        """Input-signal node ids (the DFG leaves)."""
        return [n.node_id for n in self.nodes
                if n.kind == KIND_SIGNAL and n.label == "input"]

    def labels(self):
        """List of node labels in node-id order."""
        return [node.label for node in self.nodes]

    def label_counts(self):
        """Histogram of node labels."""
        counts = {}
        for node in self.nodes:
            counts[node.label] = counts.get(node.label, 0) + 1
        return counts

    def stats(self):
        """Summary dict used in reports and tests."""
        return {
            "name": self.name,
            "nodes": len(self.nodes),
            "edges": self.num_edges,
            "roots": len(self.roots()),
            "leaves": len(self.leaves()),
        }

    # -- transforms ----------------------------------------------------------
    def reachable_from(self, seed_ids):
        """Set of node ids reachable from ``seed_ids`` along dependencies."""
        seen = set()
        stack = list(seed_ids)
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            stack.extend(self._succ[node_id])
        return seen

    def subgraph(self, keep_ids):
        """A new DFG containing only ``keep_ids`` (edges restricted)."""
        keep = sorted(set(keep_ids))
        remap = {old: new for new, old in enumerate(keep)}
        out = DFG(self.name)
        for old in keep:
            node = self.nodes[old]
            out.add_node(node.kind, node.label, node.name)
        for old in keep:
            for dep in self._succ[old]:
                if dep in remap:
                    out.add_edge(remap[old], remap[dep])
        return out

    def to_networkx(self):
        """Export as a networkx DiGraph with node attributes."""
        graph = nx.DiGraph(name=self.name)
        for node in self.nodes:
            graph.add_node(node.node_id, kind=node.kind, label=node.label,
                           name=node.name)
        for src, deps in enumerate(self._succ):
            for dst in deps:
                graph.add_edge(src, dst)
        return graph

    def adjacency(self, symmetric=True, dtype=np.float64):
        """Sparse adjacency matrix (CSR).

        Args:
            symmetric: union with the transpose, which is what the GCN
                propagation (Eq. 5) expects for undirected message passing.
        """
        n = len(self.nodes)
        rows, cols = [], []
        for src, deps in enumerate(self._succ):
            for dst in deps:
                rows.append(src)
                cols.append(dst)
        data = np.ones(len(rows), dtype=dtype)
        matrix = sparse.csr_matrix((data, (rows, cols)), shape=(n, n))
        if symmetric:
            matrix = matrix.maximum(matrix.T)
        return matrix

    def __repr__(self):
        return (f"DFG({self.name!r}, nodes={len(self.nodes)}, "
                f"edges={self.num_edges})")


_ROLE_RANK = {"wire": 1, "reg": 2, "input": 3, "output": 4}
