"""Constant-expression evaluation over the Verilog AST.

Used by elaboration (parameter binding, width evaluation) and by the
dataflow analyzer (for-loop unrolling, constant selects).
"""

from repro.errors import DataflowError
from repro.verilog import ast_nodes as ast

_BINARY_EVAL = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b if b else 0,
    "%": lambda a, b: a % b if b else 0,
    "**": lambda a, b: a ** b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "<<<": lambda a, b: a << b,
    ">>>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "~^": lambda a, b: ~(a ^ b),
    "^~": lambda a, b: ~(a ^ b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "===": lambda a, b: int(a == b),
    "!==": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b),
    ">=": lambda a, b: int(a >= b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}

_UNARY_EVAL = {
    "+": lambda a: a,
    "-": lambda a: -a,
    "~": lambda a: ~a,
    "!": lambda a: int(not a),
    "&": lambda a: int(a != 0 and (a & (a + 1)) == 0 and a != 0),
    "|": lambda a: int(a != 0),
    "^": lambda a: bin(a if a >= 0 else ~a).count("1") & 1,
}


def evaluate_const(expr, env=None):
    """Evaluate ``expr`` to a Python int.

    Args:
        expr: expression AST node.
        env: mapping of identifier name -> int (parameters, loop vars).

    Raises:
        DataflowError: when the expression is not compile-time constant.
    """
    env = env or {}
    if isinstance(expr, ast.IntConst):
        return expr.value
    if isinstance(expr, ast.BasedConst):
        return expr.value
    if isinstance(expr, ast.Identifier):
        if expr.name in env:
            return env[expr.name]
        raise DataflowError(f"identifier {expr.name!r} is not a constant")
    if isinstance(expr, ast.UnaryOp):
        handler = _UNARY_EVAL.get(expr.op)
        if handler is None:
            raise DataflowError(f"cannot const-evaluate unary {expr.op!r}")
        return handler(evaluate_const(expr.operand, env))
    if isinstance(expr, ast.BinaryOp):
        handler = _BINARY_EVAL.get(expr.op)
        if handler is None:
            raise DataflowError(f"cannot const-evaluate binary {expr.op!r}")
        return handler(evaluate_const(expr.left, env),
                       evaluate_const(expr.right, env))
    if isinstance(expr, ast.Ternary):
        if evaluate_const(expr.cond, env):
            return evaluate_const(expr.true_value, env)
        return evaluate_const(expr.false_value, env)
    if isinstance(expr, ast.FunctionCall) and expr.name == "$clog2":
        value = evaluate_const(expr.args[0], env)
        return max(0, (value - 1).bit_length())
    if isinstance(expr, ast.Concat):
        # Constant concatenation: only meaningful when widths are known;
        # we only need it for based-literal concats in parameter values.
        result = 0
        for part in expr.parts:
            if not isinstance(part, ast.BasedConst) or part.width is None:
                raise DataflowError("cannot const-evaluate concat part")
            result = (result << part.width) | part.value
        return result
    raise DataflowError(
        f"expression of type {type(expr).__name__} is not constant")


def try_evaluate_const(expr, env=None):
    """Like :func:`evaluate_const` but returns ``None`` on failure."""
    try:
        return evaluate_const(expr, env)
    except DataflowError:
        return None


def width_bits(width, env=None):
    """Number of bits described by a :class:`Width` (``None`` -> 1)."""
    if width is None:
        return 1
    msb = evaluate_const(width.msb, env)
    lsb = evaluate_const(width.lsb, env)
    return abs(msb - lsb) + 1
