"""The five-phase DFG generation pipeline (paper Fig. 2).

``preprocess -> parse -> data flow analysis -> merge -> trim``

The merge phase is folded into the analyzer (signal nodes are shared as the
per-signal trees are built), matching the paper's description of merging the
per-signal dataflow trees into one graph.
"""

from repro.dataflow.analyzer import analyze
from repro.dataflow.elaborate import elaborate
from repro.dataflow.trim import trim
from repro.verilog import parse, preprocess


class DFGPipeline:
    """End-to-end DFG extraction from Verilog text or files.

    Args:
        include_dirs: directories for ```include`` resolution.
        defines: initial preprocessor macro table.
        do_trim: disable to inspect the raw merged graph.
    """

    def __init__(self, include_dirs=(), defines=None, do_trim=True):
        self._include_dirs = tuple(include_dirs)
        self._defines = defines
        self.do_trim = do_trim

    def preprocess_text(self, text):
        """Run only the preprocess phase; returns the flattened source.

        The cleaned text fully determines the rest of the pipeline (given
        :meth:`options_fingerprint`), which is what makes extraction
        content-addressable: the fingerprint index caches DFGs keyed by a
        hash of this string plus the option fingerprint.
        """
        return preprocess(text, include_dirs=self._include_dirs,
                          defines=self._defines)

    def extract_preprocessed(self, cleaned, top=None):
        """Run parse / elaborate / analyze / trim on preprocessed text."""
        source = parse(cleaned)
        flat = elaborate(source, top=top)
        graph = analyze(flat)
        if self.do_trim:
            graph = trim(graph)
        return graph

    def options_fingerprint(self):
        """Stable string describing every option that affects the output.

        Two pipelines with equal fingerprints produce identical DFGs for
        identical preprocessed text, so the fingerprint participates in
        cache keys.  Include dirs and defines are excluded deliberately:
        they only affect preprocessing, which is already captured by
        hashing the preprocessed text itself.
        """
        return f"trim={int(self.do_trim)}"

    def extract(self, text, top=None):
        """Run all five phases on ``text``; returns the final DFG."""
        return self.extract_preprocessed(self.preprocess_text(text), top=top)

    def extract_file(self, path, top=None):
        """Run the pipeline on a Verilog file."""
        with open(path) as handle:
            return self.extract(handle.read(), top=top)


def dfg_from_verilog(text, top=None, do_trim=True):
    """One-shot convenience: Verilog text -> final DFG."""
    return DFGPipeline(do_trim=do_trim).extract(text, top=top)
