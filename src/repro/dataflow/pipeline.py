"""The five-phase DFG generation pipeline (paper Fig. 2).

``preprocess -> parse -> data flow analysis -> merge -> trim``

The merge phase is folded into the analyzer (signal nodes are shared as the
per-signal trees are built), matching the paper's description of merging the
per-signal dataflow trees into one graph.
"""

from repro.dataflow.analyzer import analyze
from repro.dataflow.elaborate import elaborate
from repro.dataflow.trim import trim
from repro.verilog import parse, preprocess


class DFGPipeline:
    """End-to-end DFG extraction from Verilog text or files.

    Args:
        include_dirs: directories for ```include`` resolution.
        defines: initial preprocessor macro table.
        do_trim: disable to inspect the raw merged graph.
    """

    def __init__(self, include_dirs=(), defines=None, do_trim=True):
        self._include_dirs = include_dirs
        self._defines = defines
        self._do_trim = do_trim

    def extract(self, text, top=None):
        """Run all five phases on ``text``; returns the final DFG."""
        cleaned = preprocess(text, include_dirs=self._include_dirs,
                             defines=self._defines)
        source = parse(cleaned)
        flat = elaborate(source, top=top)
        graph = analyze(flat)
        if self._do_trim:
            graph = trim(graph)
        return graph

    def extract_file(self, path, top=None):
        """Run the pipeline on a Verilog file."""
        with open(path) as handle:
            return self.extract(handle.read(), top=top)


def dfg_from_verilog(text, top=None, do_trim=True):
    """One-shot convenience: Verilog text -> final DFG."""
    return DFGPipeline(do_trim=do_trim).extract(text, top=top)
