"""DFG serialization: a stable on-disk format for extracted graphs.

The format is zlib-compressed JSON of a flat dict — deterministic for a
given graph, safe to load from untrusted bytes (no pickling of arbitrary
objects), and versioned so stale cache entries from an incompatible format
are rejected instead of misread.  Used by the fingerprint index's
content-addressed DFG cache (:mod:`repro.index.cache`).
"""

import json
import zlib

from repro.dataflow.graph import DFG
from repro.errors import DataflowError

#: Bump when the payload layout changes; loaders reject other versions.
FORMAT_VERSION = 1


def dfg_to_dict(graph):
    """Flatten a :class:`~repro.dataflow.graph.DFG` into plain JSON types."""
    return {
        "version": FORMAT_VERSION,
        "name": graph.name,
        "kinds": [node.kind for node in graph.nodes],
        "labels": [node.label for node in graph.nodes],
        "names": [node.name for node in graph.nodes],
        "edges": [[src, dst]
                  for src in range(len(graph))
                  for dst in graph.successors(src)],
    }


def dfg_from_dict(payload):
    """Rebuild a DFG from :func:`dfg_to_dict` output.

    Raises:
        DataflowError: on a malformed or version-incompatible payload.
    """
    try:
        if payload["version"] != FORMAT_VERSION:
            raise DataflowError(
                f"DFG payload version {payload['version']!r} "
                f"!= {FORMAT_VERSION}")
        graph = DFG(payload["name"])
        kinds, labels, names = (payload["kinds"], payload["labels"],
                                payload["names"])
        if not (len(kinds) == len(labels) == len(names)):
            raise DataflowError("DFG payload arrays disagree in length")
        for kind, label, name in zip(kinds, labels, names):
            graph.add_node(kind, label, name)
        count = len(kinds)
        for src, dst in payload["edges"]:
            if not (0 <= src < count and 0 <= dst < count):
                raise DataflowError(f"DFG payload edge {src}->{dst} "
                                    f"out of range")
            graph.add_edge(src, dst)
        return graph
    except (KeyError, TypeError, ValueError) as exc:
        raise DataflowError(f"malformed DFG payload: {exc}") from exc


def dumps(graph):
    """Serialize a DFG to compressed bytes."""
    text = json.dumps(dfg_to_dict(graph), separators=(",", ":"),
                      sort_keys=True)
    return zlib.compress(text.encode("utf-8"), level=6)


def loads(blob):
    """Deserialize bytes from :func:`dumps`.

    Raises:
        DataflowError: if the bytes are corrupt or not a DFG payload.
    """
    try:
        payload = json.loads(zlib.decompress(blob).decode("utf-8"))
    except (zlib.error, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DataflowError(f"corrupt DFG blob: {exc}") from exc
    return dfg_from_dict(payload)
