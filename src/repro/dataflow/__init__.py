"""Data-flow graph extraction: elaboration, analysis, trimming, pipeline."""

from repro.dataflow.analyzer import (
    BINARY_OP_LABELS,
    DataflowAnalyzer,
    GATE_LABELS,
    UNARY_OP_LABELS,
    analyze,
)
from repro.dataflow.consteval import evaluate_const, try_evaluate_const, width_bits
from repro.dataflow.elaborate import Elaborator, elaborate, find_top_module
from repro.dataflow.graph import DFG, DFGNode, KIND_CONST, KIND_OP, KIND_SIGNAL
from repro.dataflow.pipeline import DFGPipeline, dfg_from_verilog
from repro.dataflow.serialize import dfg_from_dict, dfg_to_dict
from repro.dataflow.trim import collapse_pass_through, prune_unreachable, trim

__all__ = [
    "BINARY_OP_LABELS",
    "UNARY_OP_LABELS",
    "GATE_LABELS",
    "DataflowAnalyzer",
    "analyze",
    "evaluate_const",
    "try_evaluate_const",
    "width_bits",
    "Elaborator",
    "elaborate",
    "find_top_module",
    "DFG",
    "DFGNode",
    "KIND_CONST",
    "KIND_OP",
    "KIND_SIGNAL",
    "DFGPipeline",
    "dfg_from_verilog",
    "dfg_from_dict",
    "dfg_to_dict",
    "collapse_pass_through",
    "prune_unreachable",
    "trim",
]
