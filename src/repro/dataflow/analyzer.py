"""Dataflow analysis: build per-signal dataflow trees and merge them.

This is the "data flow analysis" + "merge graphs" phase of the paper's
pipeline (Fig. 2).  Procedural blocks are symbolically executed: blocking
assignments update an environment, control flow becomes ``branch`` nodes,
and clocked blocks wrap the register's next-state tree in a ``dff`` node
whose second operand records the clock edge.
"""

from repro.errors import DataflowError
from repro.dataflow.consteval import try_evaluate_const
from repro.dataflow.graph import DFG, KIND_CONST, KIND_OP
from repro.verilog import ast_nodes as ast

_MAX_LOOP_ITERATIONS = 4096

#: Verilog operator -> vocabulary label (binary position).
BINARY_OP_LABELS = {
    "+": "plus", "-": "minus", "*": "times", "/": "divide", "%": "mod",
    "**": "power",
    "<<": "sll", ">>": "srl", "<<<": "sla", ">>>": "sra",
    "<": "lt", ">": "gt", "<=": "le", ">=": "ge",
    "==": "eq", "!=": "neq", "===": "eqcase", "!==": "neqcase",
    "&": "and", "|": "or", "^": "xor", "~^": "xnor", "^~": "xnor",
    "&&": "land", "||": "lor",
}

#: Verilog operator -> vocabulary label (unary position).
UNARY_OP_LABELS = {
    "+": "uplus", "-": "uminus", "!": "lnot", "~": "unot",
    "&": "uand", "|": "uor", "^": "uxor",
    "~&": "unand", "~|": "unor", "~^": "uxnor",
}

#: Gate primitive -> vocabulary label.
GATE_LABELS = {
    "and": "and", "or": "or", "xor": "xor", "xnor": "xnor",
    "nand": "nand", "nor": "nor", "not": "unot", "buf": "buf",
}


class DataflowAnalyzer:
    """Builds a :class:`DFG` from one flattened module."""

    def __init__(self, module):
        self._module = module
        self._graph = DFG(module.name)
        self._roles = {}
        self._integers = set()
        self._collect_signal_roles()

    def analyze(self):
        """Process every module item; returns the merged (untrimmed) DFG."""
        for name, role in self._roles.items():
            self._graph.add_signal(name, role)
        for item in self._module.items:
            if isinstance(item, ast.Assign):
                self._process_assign(item)
            elif isinstance(item, ast.GateInstance):
                self._process_gate(item)
            elif isinstance(item, ast.Always):
                self._process_always(item)
            elif isinstance(item, (ast.NetDecl, ast.Initial)):
                continue
            elif isinstance(item, ast.ModuleInstance):
                raise DataflowError(
                    f"unelaborated instance {item.name!r}; run elaborate() first")
            else:
                raise DataflowError(
                    f"unsupported item {type(item).__name__} in dataflow")
        return self._graph

    # -- signal table ----------------------------------------------------
    def _collect_signal_roles(self):
        for port in self._module.ports:
            role = port.direction if port.direction != "inout" else "output"
            self._roles[port.name] = role
        for item in self._module.items:
            if not isinstance(item, ast.NetDecl):
                continue
            for name in item.names:
                if item.kind == "integer":
                    self._integers.add(name)
                    continue
                role = "reg" if item.kind == "reg" else "wire"
                if name not in self._roles:
                    self._roles[name] = role

    # -- helpers -----------------------------------------------------------
    def _op(self, label, children):
        node = self._graph.add_node(KIND_OP, label)
        for child in children:
            self._graph.add_edge(node, child)
        return node

    def _const(self, text):
        return self._graph.add_node(KIND_CONST, "const", name=str(text))

    def _signal(self, name):
        if name not in self._roles:
            # Implicit net (legal Verilog): declare it as a wire on first use.
            self._roles[name] = "wire"
        return self._graph.add_signal(name, self._roles[name])

    def _drive(self, name, tree):
        """Connect signal ``name`` to the top of its dataflow tree."""
        signal = self._signal(name)
        existing = self._graph.successors(signal)
        if existing:
            # Multiple drivers (e.g. partial assigns from several items):
            # join them under a single concat node.
            joined = self._op("concat", existing + [tree])
            self._graph._succ[signal] = []
            for dep in existing:
                self._graph._pred[dep].remove(signal)
            self._graph.add_edge(signal, joined)
        else:
            self._graph.add_edge(signal, tree)

    # -- expression trees ----------------------------------------------------
    def build_tree(self, expr, env=None, loop_env=None):
        """Build the DFG subtree for ``expr``; returns the top node id."""
        env = env if env is not None else {}
        loop_env = loop_env if loop_env is not None else {}
        if isinstance(expr, ast.Identifier):
            if expr.name in loop_env:
                return self._const(loop_env[expr.name])
            if expr.name in env:
                return env[expr.name]
            if expr.name in self._integers:
                raise DataflowError(
                    f"integer {expr.name!r} read before assignment")
            return self._signal(expr.name)
        if isinstance(expr, ast.IntConst):
            return self._const(expr.value)
        if isinstance(expr, ast.BasedConst):
            return self._const(str(expr))
        if isinstance(expr, ast.StringConst):
            return self._const(expr.value)
        if isinstance(expr, ast.UnaryOp):
            label = UNARY_OP_LABELS.get(expr.op)
            if label is None:
                raise DataflowError(f"unknown unary operator {expr.op!r}")
            return self._op(label, [self.build_tree(expr.operand, env, loop_env)])
        if isinstance(expr, ast.BinaryOp):
            label = BINARY_OP_LABELS.get(expr.op)
            if label is None:
                raise DataflowError(f"unknown binary operator {expr.op!r}")
            return self._op(label, [self.build_tree(expr.left, env, loop_env),
                                    self.build_tree(expr.right, env, loop_env)])
        if isinstance(expr, ast.Ternary):
            return self._op("branch", [
                self.build_tree(expr.cond, env, loop_env),
                self.build_tree(expr.true_value, env, loop_env),
                self.build_tree(expr.false_value, env, loop_env)])
        if isinstance(expr, ast.Concat):
            return self._op("concat", [self.build_tree(p, env, loop_env)
                                       for p in expr.parts])
        if isinstance(expr, ast.Repeat):
            return self._op("repeat", [self.build_tree(expr.count, env, loop_env),
                                       self.build_tree(expr.value, env, loop_env)])
        if isinstance(expr, ast.BitSelect):
            return self._op("pointer", [self.build_tree(expr.base, env, loop_env),
                                        self.build_tree(expr.index, env, loop_env)])
        if isinstance(expr, ast.PartSelect):
            return self._op("partselect", [
                self.build_tree(expr.base, env, loop_env),
                self.build_tree(expr.left, env, loop_env),
                self.build_tree(expr.right, env, loop_env)])
        if isinstance(expr, ast.FunctionCall):
            if expr.name in ("$signed", "$unsigned") and expr.args:
                return self.build_tree(expr.args[0], env, loop_env)
            return self._op("func", [self.build_tree(a, env, loop_env)
                                     for a in expr.args])
        raise DataflowError(
            f"cannot analyze expression of type {type(expr).__name__}")

    # -- module items ----------------------------------------------------
    def _process_assign(self, item):
        tree = self.build_tree(item.rhs)
        self._assign_lhs(item.lhs, tree, env=None, loop_env={})

    def _process_gate(self, item):
        if not item.args:
            raise DataflowError(f"gate {item.name!r} has no connections")
        label = GATE_LABELS[item.gate]
        inputs = [self.build_tree(arg) for arg in item.args[1:]]
        if not inputs:
            raise DataflowError(f"gate {item.name!r} has no inputs")
        tree = self._op(label, inputs)
        self._assign_lhs(item.args[0], tree, env=None, loop_env={})

    def _process_always(self, item):
        env = {}
        loop_env = {}
        self._exec_statement(item.statement, env, loop_env)
        clocked = item.is_clocked
        edge_nodes = []
        if clocked:
            for sens in item.sens_list:
                if sens.edge in ("posedge", "negedge"):
                    signal = self.build_tree(sens.signal)
                    edge_nodes.append(self._op(sens.edge, [signal]))
        for target, tree in env.items():
            if target.startswith("\0"):
                continue  # loop-variable markers
            if clocked:
                tree = self._op("dff", [tree] + edge_nodes)
            self._drive(target, tree)

    # -- statement symbolic execution ------------------------------------
    def _exec_statement(self, stmt, env, loop_env):
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._exec_statement(inner, env, loop_env)
        elif isinstance(stmt, (ast.BlockingAssign, ast.NonblockingAssign)):
            self._exec_assign(stmt, env, loop_env)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, env, loop_env)
        elif isinstance(stmt, ast.Case):
            self._exec_case(stmt, env, loop_env)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, env, loop_env)
        else:
            raise DataflowError(
                f"unsupported statement {type(stmt).__name__}")

    def _exec_assign(self, stmt, env, loop_env):
        target = stmt.lhs
        if isinstance(target, ast.Identifier) and (
                target.name in self._integers or target.name in loop_env):
            value = try_evaluate_const(stmt.rhs, dict(loop_env))
            if value is None:
                raise DataflowError(
                    f"loop variable {target.name!r} assigned a non-constant")
            loop_env[target.name] = value
            return
        # Reads in blocking assignments see earlier writes from this block;
        # non-blocking reads also use env when present (conservative and
        # structurally equivalent for DFG purposes).
        tree = self.build_tree(stmt.rhs, env, loop_env)
        self._assign_lhs(target, tree, env, loop_env)

    def _assign_lhs(self, lhs, tree, env, loop_env):
        if isinstance(lhs, ast.Identifier):
            self._store(lhs.name, tree, env)
        elif isinstance(lhs, ast.BitSelect):
            index = self.build_tree(lhs.index, env or {}, loop_env)
            base_name = _lhs_base_name(lhs)
            prev = self._read_previous(base_name, env)
            node = self._op("partassign", [prev, index, tree])
            self._store(base_name, node, env)
        elif isinstance(lhs, ast.PartSelect):
            left = self.build_tree(lhs.left, env or {}, loop_env)
            right = self.build_tree(lhs.right, env or {}, loop_env)
            base_name = _lhs_base_name(lhs)
            prev = self._read_previous(base_name, env)
            node = self._op("partassign", [prev, left, right, tree])
            self._store(base_name, node, env)
        elif isinstance(lhs, ast.Concat):
            for part in lhs.parts:
                node = self._op("partselect", [tree])
                self._assign_lhs(part, node, env, loop_env)
        else:
            raise DataflowError(
                f"invalid assignment target {type(lhs).__name__}")

    def _store(self, name, tree, env):
        if env is None:
            self._drive(name, tree)
        else:
            env[name] = tree

    def _read_previous(self, name, env):
        if env is not None and name in env:
            return env[name]
        return self._signal(name)

    def _exec_if(self, stmt, env, loop_env):
        constant = try_evaluate_const(stmt.cond, dict(loop_env))
        if constant is not None and _is_pure_loop_condition(stmt.cond, loop_env):
            branch = stmt.then_stmt if constant else stmt.else_stmt
            if branch is not None:
                self._exec_statement(branch, env, loop_env)
            return
        cond = self.build_tree(stmt.cond, env, loop_env)
        then_env = dict(env)
        self._exec_statement(stmt.then_stmt, then_env, dict(loop_env))
        else_env = dict(env)
        if stmt.else_stmt is not None:
            self._exec_statement(stmt.else_stmt, else_env, dict(loop_env))
        self._merge_branches(cond, then_env, else_env, env)

    def _exec_case(self, stmt, env, loop_env):
        subject = self.build_tree(stmt.expr, env, loop_env)
        default_env = dict(env)
        arms = []
        for item in stmt.items:
            if not item.patterns:
                self._exec_statement(item.statement, default_env,
                                     dict(loop_env))
                continue
            pattern_nodes = [self.build_tree(p, env, loop_env)
                             for p in item.patterns]
            cond = self._op("eq", [subject] + pattern_nodes)
            arm_env = dict(env)
            self._exec_statement(item.statement, arm_env, dict(loop_env))
            arms.append((cond, arm_env))
        # Fold from the last arm toward the first: default is the innermost.
        result_env = default_env
        for cond, arm_env in reversed(arms):
            merged = dict(env)
            self._merge_branches(cond, arm_env, result_env, merged)
            result_env = merged
        env.clear()
        env.update(result_env)

    def _merge_branches(self, cond, then_env, else_env, out_env):
        # Sorted so node creation order (hence node ids and downstream
        # top-k tie-breaks) never depends on hash-randomized set order:
        # identical source must yield an identical graph in every process.
        touched = sorted(set(then_env) | set(else_env))
        for name in touched:
            then_tree = then_env.get(name)
            else_tree = else_env.get(name)
            if then_tree is None:
                then_tree = self._read_previous(name, out_env)
            if else_tree is None:
                else_tree = self._read_previous(name, out_env)
            if then_tree == else_tree:
                out_env[name] = then_tree
            else:
                out_env[name] = self._op("branch",
                                         [cond, then_tree, else_tree])

    def _exec_for(self, stmt, env, loop_env):
        inner_loop_env = dict(loop_env)
        self._exec_assign(stmt.init, env, inner_loop_env)
        iterations = 0
        while True:
            condition = try_evaluate_const(stmt.cond, dict(inner_loop_env))
            if condition is None:
                raise DataflowError("for-loop condition is not constant")
            if not condition:
                break
            iterations += 1
            if iterations > _MAX_LOOP_ITERATIONS:
                raise DataflowError("for-loop exceeds unroll limit")
            self._exec_statement(stmt.body, env, inner_loop_env)
            self._exec_assign(stmt.step, env, inner_loop_env)


def _lhs_base_name(lhs):
    base = lhs.base
    while isinstance(base, (ast.BitSelect, ast.PartSelect)):
        base = base.base
    if not isinstance(base, ast.Identifier):
        raise DataflowError("assignment target base must be an identifier")
    return base.name


def _is_pure_loop_condition(expr, loop_env):
    """True when every identifier in ``expr`` is a loop variable."""
    if isinstance(expr, ast.Identifier):
        return expr.name in loop_env
    if isinstance(expr, (ast.IntConst, ast.BasedConst)):
        return True
    if isinstance(expr, ast.UnaryOp):
        return _is_pure_loop_condition(expr.operand, loop_env)
    if isinstance(expr, ast.BinaryOp):
        return (_is_pure_loop_condition(expr.left, loop_env)
                and _is_pure_loop_condition(expr.right, loop_env))
    if isinstance(expr, ast.Ternary):
        return (_is_pure_loop_condition(expr.cond, loop_env)
                and _is_pure_loop_condition(expr.true_value, loop_env)
                and _is_pure_loop_condition(expr.false_value, loop_env))
    return False


def analyze(module):
    """Build the merged, untrimmed DFG for a flattened module."""
    return DataflowAnalyzer(module).analyze()
