"""Terminal-friendly plotting helpers (ASCII scatter / histogram).

The benchmark harness renders Fig. 4-style projections and score
distributions directly into its text reports with these.
"""

import numpy as np


def ascii_scatter(points, labels=None, markers=None, width=64, height=20):
    """Render 2-D points as an ASCII scatter plot.

    Args:
        points: (n, 2) array-like.
        labels: optional per-point integer labels selecting the marker.
        markers: {label: single-char} mapping (defaults to o/x/+/#...).
        width, height: canvas size in characters.

    Returns:
        A multi-line string.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] < 2:
        raise ValueError("ascii_scatter expects (n, 2) points")
    if labels is None:
        labels = np.zeros(len(points), dtype=np.int64)
    labels = np.asarray(labels)
    if markers is None:
        palette = "ox+#*%@&"
        unique = sorted(set(int(v) for v in labels))
        markers = {value: palette[i % len(palette)]
                   for i, value in enumerate(unique)}
    mins = points[:, :2].min(axis=0)
    maxs = points[:, :2].max(axis=0)
    span = np.maximum(maxs - mins, 1e-9)
    canvas = [[" "] * width for _ in range(height)]
    for point, label in zip(points, labels):
        x = int((point[0] - mins[0]) / span[0] * (width - 1))
        y = int((point[1] - mins[1]) / span[1] * (height - 1))
        canvas[height - 1 - y][x] = markers[int(label)]
    return "\n".join("".join(row) for row in canvas)


def ascii_histogram(values, bins=20, width=50, title=None):
    """Render a 1-D histogram with unicode-free bars.

    Returns:
        A multi-line string; one line per bin with its range and count.
    """
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("no values to histogram")
    counts, edges = np.histogram(values, bins=bins)
    peak = max(counts.max(), 1)
    lines = [] if title is None else [title]
    for count, low, high in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{low:+7.3f} .. {high:+7.3f} |{bar} {count}")
    return "\n".join(lines)


def score_distribution_text(similarities, labels, delta=None, bins=16):
    """Two stacked histograms: similar-pair vs different-pair scores."""
    similarities = np.asarray(list(similarities), dtype=np.float64)
    labels = np.asarray(list(labels))
    positive = similarities[labels > 0]
    negative = similarities[labels <= 0]
    parts = []
    if positive.size:
        parts.append(ascii_histogram(positive, bins=bins,
                                     title="similar pairs:"))
    if negative.size:
        parts.append(ascii_histogram(negative, bins=bins,
                                     title="different pairs:"))
    if delta is not None:
        parts.append(f"decision boundary delta = {delta:+.4f}")
    return "\n\n".join(parts)
