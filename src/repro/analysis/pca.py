"""Principal component analysis via SVD (for Fig. 4(b))."""

import numpy as np


class PCA:
    """Minimal PCA: fit on an (n, d) matrix, project to k components.

    Components are the right singular vectors of the centered data; the
    projection maximizes retained variance, exactly as in the paper's
    embedding visualization.
    """

    def __init__(self, n_components=2):
        if n_components < 1:
            raise ValueError("need at least one component")
        self.n_components = n_components
        self.mean_ = None
        self.components_ = None
        self.explained_variance_ratio_ = None

    def fit(self, data):
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("expected a 2-D data matrix")
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        k = min(self.n_components, vt.shape[0])
        self.components_ = vt[:k]
        variance = singular_values ** 2
        total = variance.sum()
        self.explained_variance_ratio_ = (
            variance[:k] / total if total > 0 else np.zeros(k))
        return self

    def transform(self, data):
        if self.components_ is None:
            raise RuntimeError("fit the PCA first")
        centered = np.asarray(data, dtype=np.float64) - self.mean_
        return centered @ self.components_.T

    def fit_transform(self, data):
        return self.fit(data).transform(data)


def pca_project(data, n_components=2):
    """One-shot PCA projection."""
    return PCA(n_components).fit_transform(data)
