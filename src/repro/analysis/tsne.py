"""Exact t-SNE (van der Maaten & Hinton 2008) for Fig. 4(c).

An O(n^2) implementation — the paper visualizes 250 embeddings, far below
the scale where Barnes-Hut matters.
"""

import numpy as np


def _pairwise_sq_distances(data):
    norms = (data ** 2).sum(axis=1)
    distances = norms[:, None] + norms[None, :] - 2.0 * (data @ data.T)
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def _binary_search_beta(distances_row, target_entropy, tol=1e-5,
                        max_iter=50):
    """Find the Gaussian precision beta matching the target entropy."""
    beta = 1.0
    beta_min, beta_max = -np.inf, np.inf
    for _ in range(max_iter):
        exponent = -distances_row * beta
        exponent -= exponent.max()
        p = np.exp(exponent)
        p_sum = p.sum()
        if p_sum <= 0:
            p_sum = 1e-12
        entropy = np.log(p_sum) + beta * (distances_row * p).sum() / p_sum
        diff = entropy - target_entropy
        if abs(diff) < tol:
            break
        if diff > 0:
            beta_min = beta
            beta = beta * 2.0 if beta_max == np.inf else (beta + beta_max) / 2
        else:
            beta_max = beta
            beta = beta / 2.0 if beta_min == -np.inf else (beta + beta_min) / 2
    return beta, p / p_sum


def _joint_probabilities(data, perplexity):
    n = data.shape[0]
    distances = _pairwise_sq_distances(data)
    target_entropy = np.log(perplexity)
    probabilities = np.zeros((n, n))
    for i in range(n):
        row = np.delete(distances[i], i)
        _, p = _binary_search_beta(row, target_entropy)
        probabilities[i, np.arange(n) != i] = p
    joint = (probabilities + probabilities.T) / (2.0 * n)
    return np.maximum(joint, 1e-12)


class TSNE:
    """t-distributed stochastic neighbor embedding.

    Args:
        n_components: output dimensionality (2 or 3 in the paper's plots).
        perplexity: effective neighbor count.
        learning_rate, n_iter: gradient-descent schedule.
        seed: init RNG.
    """

    def __init__(self, n_components=2, perplexity=15.0, learning_rate="auto",
                 n_iter=400, seed=0):
        self.n_components = n_components
        self.perplexity = perplexity
        self.learning_rate = learning_rate
        self.n_iter = n_iter
        self.seed = seed

    def fit_transform(self, data):
        data = np.asarray(data, dtype=np.float64)
        n = data.shape[0]
        if n < 3:
            raise ValueError("t-SNE needs at least 3 points")
        if self.learning_rate == "auto":
            # Scale with the sample count (cf. sklearn's heuristic); large
            # fixed rates destabilize small embeddings.
            self.learning_rate = max(n / 12.0, 30.0)
        perplexity = min(self.perplexity, (n - 1) / 3.0)
        p_joint = _joint_probabilities(data, perplexity)
        rng = np.random.default_rng(self.seed)
        embedding = rng.normal(scale=1e-2, size=(n, self.n_components))
        velocity = np.zeros_like(embedding)
        gains = np.ones_like(embedding)

        exaggeration_until = min(100, self.n_iter // 4)
        p_effective = p_joint * 4.0
        for iteration in range(self.n_iter):
            if iteration == exaggeration_until:
                p_effective = p_joint
            distances = _pairwise_sq_distances(embedding)
            inv = 1.0 / (1.0 + distances)
            np.fill_diagonal(inv, 0.0)
            q_sum = inv.sum()
            q = np.maximum(inv / max(q_sum, 1e-12), 1e-12)
            pq = (p_effective - q) * inv
            grad = np.zeros_like(embedding)
            for i in range(n):
                grad[i] = 4.0 * (pq[i, :, None]
                                 * (embedding[i] - embedding)).sum(axis=0)
            momentum = 0.5 if iteration < exaggeration_until else 0.8
            same_sign = np.sign(grad) == np.sign(velocity)
            gains = np.where(same_sign, gains * 0.8, gains + 0.2)
            gains = np.maximum(gains, 0.01)
            velocity = momentum * velocity - self.learning_rate * gains * grad
            embedding = embedding + velocity
            embedding -= embedding.mean(axis=0)
        return embedding


def tsne_project(data, n_components=2, perplexity=15.0, seed=0, n_iter=400,
                 learning_rate="auto"):
    """One-shot t-SNE projection."""
    return TSNE(n_components=n_components, perplexity=perplexity, seed=seed,
                n_iter=n_iter,
                learning_rate=learning_rate).fit_transform(data)
