"""Cluster-quality measures for embedding visualizations (Fig. 4(b,c)).

The paper argues its 2-D/3-D projections show "two well-separated clusters";
these metrics quantify that claim so the benchmark can assert it.
"""

import numpy as np


def silhouette_score(points, labels):
    """Mean silhouette coefficient over all points (euclidean)."""
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("need at least two clusters")
    n = len(points)
    distances = np.sqrt(np.maximum(
        (points ** 2).sum(axis=1)[:, None]
        + (points ** 2).sum(axis=1)[None, :]
        - 2 * points @ points.T, 0.0))
    scores = np.zeros(n)
    for i in range(n):
        same = labels == labels[i]
        same[i] = False
        a = distances[i, same].mean() if same.any() else 0.0
        b = np.inf
        for other in unique:
            if other == labels[i]:
                continue
            mask = labels == other
            b = min(b, distances[i, mask].mean())
        scores[i] = 0.0 if max(a, b) == 0 else (b - a) / max(a, b)
    return float(scores.mean())


def centroid_separation(points, labels):
    """Ratio of between-centroid distance to mean within-cluster spread."""
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) != 2:
        raise ValueError("defined for exactly two clusters")
    centroids = []
    spreads = []
    for value in unique:
        cluster = points[labels == value]
        centroid = cluster.mean(axis=0)
        centroids.append(centroid)
        spreads.append(np.linalg.norm(cluster - centroid, axis=1).mean())
    gap = np.linalg.norm(centroids[0] - centroids[1])
    spread = max(np.mean(spreads), 1e-12)
    return float(gap / spread)


def purity_with_2means(points, labels, seed=0, iterations=50):
    """Cluster purity of a 2-means clustering against the true labels."""
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    rng = np.random.default_rng(seed)
    # Farthest-pair initialization: a random first center, then the point
    # farthest from it — avoids seeding both centers inside one cluster.
    first = int(rng.integers(0, len(points)))
    distances_to_first = np.linalg.norm(points - points[first], axis=1)
    second = int(distances_to_first.argmax())
    centers = points[[first, second]].copy()
    assignment = np.zeros(len(points), dtype=np.int64)
    for _ in range(iterations):
        distances = np.stack([np.linalg.norm(points - c, axis=1)
                              for c in centers])
        new_assignment = distances.argmin(axis=0)
        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        for k in range(2):
            members = points[assignment == k]
            if len(members):
                centers[k] = members.mean(axis=0)
    correct = 0
    for k in range(2):
        members = labels[assignment == k]
        if len(members):
            values, counts = np.unique(members, return_counts=True)
            correct += counts.max()
    return correct / len(points)
