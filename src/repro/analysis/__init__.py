"""Embedding analysis: PCA, t-SNE, cluster-separation metrics."""

from repro.analysis.clustering import (
    centroid_separation,
    purity_with_2means,
    silhouette_score,
)
from repro.analysis.pca import PCA, pca_project
from repro.analysis.plots import (
    ascii_histogram,
    ascii_scatter,
    score_distribution_text,
)
from repro.analysis.tsne import TSNE, tsne_project

__all__ = [
    "PCA", "pca_project",
    "TSNE", "tsne_project",
    "silhouette_score", "centroid_separation", "purity_with_2means",
    "ascii_scatter", "ascii_histogram", "score_distribution_text",
]
