"""``python -m repro`` — the same CLI as the installed ``gnn4ip`` script."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
