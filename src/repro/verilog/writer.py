"""Serialize an AST back to Verilog source text.

Round-tripping (parse → write → parse) is exercised heavily in the tests; the
writer emits canonical, readable Verilog-2001.
"""

from repro.verilog import ast_nodes as ast

_INDENT = "  "


def write_source(source):
    """Render a :class:`SourceFile` as Verilog text."""
    return "\n\n".join(write_module(module) for module in source.modules) + "\n"


def write_module(module):
    """Render a single :class:`Module` as Verilog text."""
    lines = []
    header = f"module {module.name}"
    if module.params:
        params = ", ".join(
            f"parameter {p.name} = {write_expr(p.value)}" for p in module.params)
        header += f" #({params})"
    ports = ", ".join(_port_text(port) for port in module.ports)
    header += f" ({ports});"
    lines.append(header)
    for item in module.items:
        lines.extend(_item_lines(item, 1))
    lines.append("endmodule")
    return "\n".join(lines)


def _port_text(port):
    parts = [port.direction or "input"]
    if port.is_reg:
        parts.append("reg")
    if port.signed:
        parts.append("signed")
    if port.width is not None:
        parts.append(f"[{write_expr(port.width.msb)}:{write_expr(port.width.lsb)}]")
    parts.append(port.name)
    return " ".join(parts)


def _item_lines(item, depth):
    pad = _INDENT * depth
    if isinstance(item, ast.NetDecl):
        width = ""
        if item.width is not None:
            width = f" [{write_expr(item.width.msb)}:{write_expr(item.width.lsb)}]"
        signed = " signed" if item.signed else ""
        return [f"{pad}{item.kind}{signed}{width} {', '.join(item.names)};"]
    if isinstance(item, ast.ParamDecl):
        keyword = "localparam" if item.local else "parameter"
        return [f"{pad}{keyword} {item.name} = {write_expr(item.value)};"]
    if isinstance(item, ast.Assign):
        return [f"{pad}assign {write_expr(item.lhs)} = {write_expr(item.rhs)};"]
    if isinstance(item, ast.GateInstance):
        args = ", ".join(write_expr(a) for a in item.args)
        return [f"{pad}{item.gate} {item.name} ({args});"]
    if isinstance(item, ast.ModuleInstance):
        return _instance_lines(item, depth)
    if isinstance(item, ast.Always):
        return _always_lines(item, depth)
    if isinstance(item, ast.Initial):
        return [f"{pad}initial"] + _statement_lines(item.statement, depth + 1)
    raise TypeError(f"cannot write module item of type {type(item).__name__}")


def _instance_lines(item, depth):
    pad = _INDENT * depth
    text = f"{pad}{item.module}"
    if item.param_overrides:
        overrides = ", ".join(_connection_text(c) for c in item.param_overrides)
        text += f" #({overrides})"
    connections = ", ".join(_connection_text(c) for c in item.connections)
    return [f"{text} {item.name} ({connections});"]


def _connection_text(connection):
    expr = write_expr(connection.expr) if connection.expr is not None else ""
    if connection.port is None:
        return expr
    return f".{connection.port}({expr})"


def _always_lines(item, depth):
    pad = _INDENT * depth
    if item.sens_list:
        sens = " or ".join(_sens_text(s) for s in item.sens_list)
        header = f"{pad}always @({sens})"
    else:
        header = f"{pad}always @(*)"
    return [header] + _statement_lines(item.statement, depth + 1)


def _sens_text(item):
    if item.edge == "level":
        return write_expr(item.signal)
    return f"{item.edge} {write_expr(item.signal)}"


def _statement_lines(stmt, depth):
    pad = _INDENT * depth
    if isinstance(stmt, ast.Block):
        lines = [f"{_INDENT * (depth - 1)}begin"]
        for inner in stmt.statements:
            lines.extend(_statement_lines(inner, depth))
        lines.append(f"{_INDENT * (depth - 1)}end")
        return lines
    if isinstance(stmt, ast.BlockingAssign):
        return [f"{pad}{write_expr(stmt.lhs)} = {write_expr(stmt.rhs)};"]
    if isinstance(stmt, ast.NonblockingAssign):
        return [f"{pad}{write_expr(stmt.lhs)} <= {write_expr(stmt.rhs)};"]
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({write_expr(stmt.cond)})"]
        lines.extend(_statement_lines(stmt.then_stmt, depth + 1))
        if stmt.else_stmt is not None:
            lines.append(f"{pad}else")
            lines.extend(_statement_lines(stmt.else_stmt, depth + 1))
        return lines
    if isinstance(stmt, ast.Case):
        lines = [f"{pad}{stmt.kind} ({write_expr(stmt.expr)})"]
        for case_item in stmt.items:
            if case_item.patterns:
                label = ", ".join(write_expr(p) for p in case_item.patterns)
            else:
                label = "default"
            lines.append(f"{pad}{_INDENT}{label}:")
            lines.extend(_statement_lines(case_item.statement, depth + 2))
        lines.append(f"{pad}endcase")
        return lines
    if isinstance(stmt, ast.For):
        init = _inline_assign_text(stmt.init)
        step = _inline_assign_text(stmt.step)
        lines = [f"{pad}for ({init}; {write_expr(stmt.cond)}; {step})"]
        lines.extend(_statement_lines(stmt.body, depth + 1))
        return lines
    raise TypeError(f"cannot write statement of type {type(stmt).__name__}")


def _inline_assign_text(stmt):
    return f"{write_expr(stmt.lhs)} = {write_expr(stmt.rhs)}"


def write_expr(expr):
    """Render an expression node as Verilog text."""
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.IntConst):
        return str(expr.value)
    if isinstance(expr, ast.BasedConst):
        size = str(expr.width) if expr.width is not None else ""
        return f"{size}'{expr.base}{expr.digits}"
    if isinstance(expr, ast.StringConst):
        return f'"{expr.value}"'
    if isinstance(expr, ast.UnaryOp):
        return f"({expr.op}{write_expr(expr.operand)})"
    if isinstance(expr, ast.BinaryOp):
        return f"({write_expr(expr.left)} {expr.op} {write_expr(expr.right)})"
    if isinstance(expr, ast.Ternary):
        return (f"({write_expr(expr.cond)} ? {write_expr(expr.true_value)}"
                f" : {write_expr(expr.false_value)})")
    if isinstance(expr, ast.Concat):
        return "{" + ", ".join(write_expr(p) for p in expr.parts) + "}"
    if isinstance(expr, ast.Repeat):
        return "{" + write_expr(expr.count) + "{" + write_expr(expr.value) + "}}"
    if isinstance(expr, ast.BitSelect):
        return f"{write_expr(expr.base)}[{write_expr(expr.index)}]"
    if isinstance(expr, ast.PartSelect):
        if expr.mode == ":":
            return (f"{write_expr(expr.base)}"
                    f"[{write_expr(expr.left)}:{write_expr(expr.right)}]")
        return (f"{write_expr(expr.base)}"
                f"[{write_expr(expr.left)} {expr.mode} {write_expr(expr.right)}]")
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(write_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"cannot write expression of type {type(expr).__name__}")
