"""Recursive-descent parser for the synthesizable Verilog subset.

The grammar covers what the GNN4IP corpus needs: module definitions (ANSI and
non-ANSI headers), net/reg declarations with vector ranges, parameters,
continuous assigns, always/initial blocks with if/case/for, gate primitives,
and hierarchical module instantiation with parameter overrides.

Expression parsing uses precedence climbing.
"""

from repro.errors import ParseError
from repro.verilog import ast_nodes as ast
from repro.verilog.lexer import tokenize
from repro.verilog.tokens import (
    BASED_NUMBER,
    EOF,
    GATE_PRIMITIVES,
    IDENT,
    KEYWORD,
    NUMBER,
    PUNCT,
    STRING,
)

#: Binary operator precedence, higher binds tighter.  ``or`` the keyword is
#: excluded — in expression position it only appears in sensitivity lists.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4, "^~": 4, "~^": 4,
    "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
    "**": 11,
}

_UNARY_OPERATORS = frozenset({"+", "-", "!", "~", "&", "|", "^", "~&", "~|", "~^"})
_NET_KINDS = frozenset({"wire", "reg", "integer", "supply0", "supply1"})


class Parser:
    """Parses a token stream into a :class:`repro.verilog.ast_nodes.SourceFile`."""

    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers --------------------------------------------------
    def _peek(self, offset=0):
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self):
        token = self._tokens[self._pos]
        if token.kind != EOF:
            self._pos += 1
        return token

    def _check(self, kind, value=None):
        token = self._peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def _accept(self, kind, value=None):
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind, value=None):
        token = self._peek()
        if not self._check(kind, value):
            wanted = value if value is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token.value!r}", line=token.line)
        return self._advance()

    def _error(self, message):
        raise ParseError(message, line=self._peek().line)

    # -- entry points ----------------------------------------------------
    def parse(self):
        """Parse a full source file (one or more modules)."""
        modules = []
        while not self._check(EOF):
            modules.append(self._parse_module())
        return ast.SourceFile(modules)

    def _parse_module(self):
        start = self._expect(KEYWORD, "module")
        name = self._expect(IDENT).value
        params = []
        if self._accept(PUNCT, "#"):
            params = self._parse_param_port_list()
        ports = []
        if self._accept(PUNCT, "("):
            ports = self._parse_port_list()
        self._expect(PUNCT, ";")
        items = []
        while not self._check(KEYWORD, "endmodule"):
            if self._check(EOF):
                self._error(f"unterminated module {name!r}")
            item = self._parse_module_item()
            if isinstance(item, list):
                items.extend(item)
            elif item is not None:
                items.append(item)
        self._expect(KEYWORD, "endmodule")
        module = ast.Module(name=name, ports=ports, items=items,
                            params=params, line=start.line)
        _merge_port_declarations(module)
        return module

    def _parse_param_port_list(self):
        """Parse ``#(parameter W = 8, ...)`` in a module header."""
        self._expect(PUNCT, "(")
        params = []
        while not self._check(PUNCT, ")"):
            self._accept(KEYWORD, "parameter")
            width = self._parse_optional_width()
            name = self._expect(IDENT).value
            self._expect(PUNCT, "=")
            value = self._parse_expression()
            params.append(ast.ParamDecl(name=name, value=value, width=width))
            if not self._accept(PUNCT, ","):
                break
        self._expect(PUNCT, ")")
        return params

    def _parse_port_list(self):
        ports = []
        if self._check(PUNCT, ")"):
            self._advance()
            return ports
        direction = None
        is_reg = False
        signed = False
        width = None
        while True:
            token = self._peek()
            if token.kind == KEYWORD and token.value in ("input", "output", "inout"):
                direction = self._advance().value
                is_reg = bool(self._accept(KEYWORD, "reg"))
                if not is_reg:
                    self._accept(KEYWORD, "wire")
                signed = bool(self._accept(KEYWORD, "signed"))
                width = self._parse_optional_width()
            elif token.kind == KEYWORD and token.value == "wire":
                self._advance()
                width = self._parse_optional_width() or width
            name = self._expect(IDENT).value
            ports.append(ast.Port(name=name, direction=direction, width=width,
                                  is_reg=is_reg, signed=signed))
            if not self._accept(PUNCT, ","):
                break
        self._expect(PUNCT, ")")
        return ports

    # -- module items ----------------------------------------------------
    def _parse_module_item(self):
        token = self._peek()
        if token.kind == KEYWORD:
            value = token.value
            if value in ("input", "output", "inout"):
                return self._parse_port_declaration()
            if value in _NET_KINDS:
                return self._parse_net_declaration()
            if value in ("parameter", "localparam"):
                return self._parse_param_declaration()
            if value == "assign":
                return self._parse_assign()
            if value == "always":
                return self._parse_always()
            if value == "initial":
                self._advance()
                return ast.Initial(self._parse_statement())
            if value in GATE_PRIMITIVES:
                return self._parse_gate_instances()
            if value in ("genvar",):
                self._advance()
                while not self._accept(PUNCT, ";"):
                    self._advance()
                return None
            if value in ("function", "generate"):
                self._error(f"unsupported construct {value!r}")
            self._error(f"unexpected keyword {value!r} in module body")
        if token.kind == IDENT:
            return self._parse_module_instances()
        self._error(f"unexpected token {token.value!r} in module body")

    def _parse_port_declaration(self):
        """Non-ANSI ``input [3:0] a, b;`` — returned as Port markers."""
        direction = self._advance().value
        is_reg = bool(self._accept(KEYWORD, "reg"))
        if not is_reg:
            self._accept(KEYWORD, "wire")
        signed = bool(self._accept(KEYWORD, "signed"))
        width = self._parse_optional_width()
        ports = []
        while True:
            name = self._expect(IDENT).value
            ports.append(ast.Port(name=name, direction=direction, width=width,
                                  is_reg=is_reg, signed=signed))
            if not self._accept(PUNCT, ","):
                break
        self._expect(PUNCT, ";")
        return ports

    def _parse_net_declaration(self):
        token = self._advance()
        kind = token.value
        signed = bool(self._accept(KEYWORD, "signed"))
        width = self._parse_optional_width()
        names = []
        assigns = []
        while True:
            name = self._expect(IDENT).value
            names.append(name)
            if self._accept(PUNCT, "="):
                # net declaration assignment: wire x = a & b;
                rhs = self._parse_expression()
                assigns.append(ast.Assign(lhs=ast.Identifier(name), rhs=rhs,
                                          line=token.line))
            if not self._accept(PUNCT, ","):
                break
        self._expect(PUNCT, ";")
        decl = ast.NetDecl(kind=kind, names=names, width=width, signed=signed,
                           line=token.line)
        return [decl] + assigns if assigns else decl

    def _parse_param_declaration(self):
        local = self._advance().value == "localparam"
        width = self._parse_optional_width()
        decls = []
        while True:
            name = self._expect(IDENT).value
            self._expect(PUNCT, "=")
            value = self._parse_expression()
            decls.append(ast.ParamDecl(name=name, value=value, local=local,
                                       width=width))
            if not self._accept(PUNCT, ","):
                break
        self._expect(PUNCT, ";")
        return decls

    def _parse_assign(self):
        token = self._advance()
        assigns = []
        while True:
            lhs = self._parse_lvalue()
            self._expect(PUNCT, "=")
            rhs = self._parse_expression()
            assigns.append(ast.Assign(lhs=lhs, rhs=rhs, line=token.line))
            if not self._accept(PUNCT, ","):
                break
        self._expect(PUNCT, ";")
        return assigns if len(assigns) > 1 else assigns[0]

    def _parse_always(self):
        token = self._advance()
        sens_list = []
        if self._accept(PUNCT, "@"):
            if self._accept(PUNCT, "*"):
                pass
            else:
                self._expect(PUNCT, "(")
                if self._accept(PUNCT, "*"):
                    self._expect(PUNCT, ")")
                else:
                    sens_list = self._parse_sensitivity_list()
        statement = self._parse_statement()
        return ast.Always(sens_list=sens_list, statement=statement,
                          line=token.line)

    def _parse_sensitivity_list(self):
        items = []
        while True:
            edge = "level"
            if self._accept(KEYWORD, "posedge"):
                edge = "posedge"
            elif self._accept(KEYWORD, "negedge"):
                edge = "negedge"
            signal = self._parse_expression()
            items.append(ast.SensItem(edge=edge, signal=signal))
            if self._accept(PUNCT, ",") or self._accept(KEYWORD, "or"):
                continue
            break
        self._expect(PUNCT, ")")
        return items

    def _parse_gate_instances(self):
        token = self._advance()
        gate = token.value
        instances = []
        index = 0
        while True:
            name = ""
            if self._check(IDENT):
                name = self._advance().value
            else:
                name = f"{gate}_anon{index}"
            self._expect(PUNCT, "(")
            args = [self._parse_expression()]
            while self._accept(PUNCT, ","):
                args.append(self._parse_expression())
            self._expect(PUNCT, ")")
            instances.append(ast.GateInstance(gate=gate, name=name, args=args,
                                              line=token.line))
            index += 1
            if not self._accept(PUNCT, ","):
                break
        self._expect(PUNCT, ";")
        return instances if len(instances) > 1 else instances[0]

    def _parse_module_instances(self):
        token = self._advance()
        module_name = token.value
        param_overrides = []
        if self._accept(PUNCT, "#"):
            self._expect(PUNCT, "(")
            param_overrides = self._parse_connection_list()
            self._expect(PUNCT, ")")
        instances = []
        while True:
            inst_name = self._expect(IDENT).value
            self._expect(PUNCT, "(")
            connections = []
            if not self._check(PUNCT, ")"):
                connections = self._parse_connection_list()
            self._expect(PUNCT, ")")
            instances.append(ast.ModuleInstance(
                module=module_name, name=inst_name, connections=connections,
                param_overrides=list(param_overrides), line=token.line))
            if not self._accept(PUNCT, ","):
                break
        self._expect(PUNCT, ";")
        return instances if len(instances) > 1 else instances[0]

    def _parse_connection_list(self):
        connections = []
        while True:
            if self._check(PUNCT, "."):
                self._advance()
                port = self._expect(IDENT).value
                self._expect(PUNCT, "(")
                expr = None
                if not self._check(PUNCT, ")"):
                    expr = self._parse_expression()
                self._expect(PUNCT, ")")
                connections.append(ast.PortConnection(port=port, expr=expr))
            else:
                connections.append(
                    ast.PortConnection(port=None, expr=self._parse_expression()))
            if not self._accept(PUNCT, ","):
                break
        return connections

    # -- statements -------------------------------------------------------
    def _parse_statement(self):
        token = self._peek()
        if token.kind == KEYWORD:
            if token.value == "begin":
                return self._parse_block()
            if token.value == "if":
                return self._parse_if()
            if token.value in ("case", "casez", "casex"):
                return self._parse_case()
            if token.value == "for":
                return self._parse_for()
        if token.kind == PUNCT and token.value == ";":
            self._advance()
            return ast.Block(statements=[])
        return self._parse_assignment_statement()

    def _parse_block(self):
        self._expect(KEYWORD, "begin")
        name = None
        if self._accept(PUNCT, ":"):
            name = self._expect(IDENT).value
        statements = []
        while not self._check(KEYWORD, "end"):
            if self._check(EOF):
                self._error("unterminated begin block")
            statements.append(self._parse_statement())
        self._expect(KEYWORD, "end")
        return ast.Block(statements=statements, name=name)

    def _parse_if(self):
        self._expect(KEYWORD, "if")
        self._expect(PUNCT, "(")
        cond = self._parse_expression()
        self._expect(PUNCT, ")")
        then_stmt = self._parse_statement()
        else_stmt = None
        if self._accept(KEYWORD, "else"):
            else_stmt = self._parse_statement()
        return ast.If(cond=cond, then_stmt=then_stmt, else_stmt=else_stmt)

    def _parse_case(self):
        kind = self._advance().value
        self._expect(PUNCT, "(")
        expr = self._parse_expression()
        self._expect(PUNCT, ")")
        items = []
        while not self._check(KEYWORD, "endcase"):
            if self._check(EOF):
                self._error("unterminated case statement")
            if self._accept(KEYWORD, "default"):
                self._accept(PUNCT, ":")
                items.append(ast.CaseItem(patterns=[],
                                          statement=self._parse_statement()))
                continue
            patterns = [self._parse_expression()]
            while self._accept(PUNCT, ","):
                patterns.append(self._parse_expression())
            self._expect(PUNCT, ":")
            items.append(ast.CaseItem(patterns=patterns,
                                      statement=self._parse_statement()))
        self._expect(KEYWORD, "endcase")
        return ast.Case(expr=expr, items=items, kind=kind)

    def _parse_for(self):
        self._expect(KEYWORD, "for")
        self._expect(PUNCT, "(")
        init = self._parse_simple_assign()
        self._expect(PUNCT, ";")
        cond = self._parse_expression()
        self._expect(PUNCT, ";")
        step = self._parse_simple_assign()
        self._expect(PUNCT, ")")
        body = self._parse_statement()
        return ast.For(init=init, cond=cond, step=step, body=body)

    def _parse_simple_assign(self):
        lhs = self._parse_lvalue()
        self._expect(PUNCT, "=")
        rhs = self._parse_expression()
        return ast.BlockingAssign(lhs=lhs, rhs=rhs)

    def _parse_assignment_statement(self):
        line = self._peek().line
        lhs = self._parse_lvalue()
        if self._accept(PUNCT, "<="):
            rhs = self._parse_expression()
            self._expect(PUNCT, ";")
            return ast.NonblockingAssign(lhs=lhs, rhs=rhs, line=line)
        self._expect(PUNCT, "=")
        rhs = self._parse_expression()
        self._expect(PUNCT, ";")
        return ast.BlockingAssign(lhs=lhs, rhs=rhs, line=line)

    def _parse_lvalue(self):
        if self._check(PUNCT, "{"):
            return self._parse_concat()
        name = self._expect(IDENT).value
        expr = ast.Identifier(name)
        return self._parse_selects(expr)

    # -- expressions -------------------------------------------------------
    def _parse_expression(self):
        return self._parse_ternary()

    def _parse_ternary(self):
        cond = self._parse_binary(0)
        if self._accept(PUNCT, "?"):
            true_value = self._parse_expression()
            self._expect(PUNCT, ":")
            false_value = self._parse_expression()
            return ast.Ternary(cond=cond, true_value=true_value,
                               false_value=false_value)
        return cond

    def _parse_binary(self, min_precedence):
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind != PUNCT:
                return left
            precedence = _BINARY_PRECEDENCE.get(token.value)
            if precedence is None or precedence < min_precedence:
                return left
            op = self._advance().value
            right = self._parse_binary(precedence + 1)
            left = ast.BinaryOp(op=op, left=left, right=right)

    def _parse_unary(self):
        token = self._peek()
        if token.kind == PUNCT and token.value in _UNARY_OPERATORS:
            op = self._advance().value
            operand = self._parse_unary()
            return ast.UnaryOp(op=op, operand=operand)
        return self._parse_primary()

    def _parse_primary(self):
        token = self._peek()
        if token.kind == NUMBER:
            self._advance()
            return ast.IntConst(int(token.value))
        if token.kind == BASED_NUMBER:
            self._advance()
            return _parse_based_literal(token.value)
        if token.kind == STRING:
            self._advance()
            return ast.StringConst(token.value)
        if token.kind == PUNCT and token.value == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect(PUNCT, ")")
            return self._parse_selects(expr)
        if token.kind == PUNCT and token.value == "{":
            return self._parse_concat()
        if token.kind == IDENT:
            name = self._advance().value
            if self._check(PUNCT, "("):
                return self._parse_function_call(name)
            return self._parse_selects(ast.Identifier(name))
        self._error(f"unexpected token {token.value!r} in expression")

    def _parse_function_call(self, name):
        self._expect(PUNCT, "(")
        args = []
        if not self._check(PUNCT, ")"):
            args.append(self._parse_expression())
            while self._accept(PUNCT, ","):
                args.append(self._parse_expression())
        self._expect(PUNCT, ")")
        return ast.FunctionCall(name=name, args=args)

    def _parse_concat(self):
        self._expect(PUNCT, "{")
        first = self._parse_expression()
        if self._check(PUNCT, "{"):
            # replication {N{expr}}
            inner = self._parse_concat()
            self._expect(PUNCT, "}")
            return ast.Repeat(count=first, value=inner)
        parts = [first]
        while self._accept(PUNCT, ","):
            parts.append(self._parse_expression())
        self._expect(PUNCT, "}")
        return ast.Concat(parts=parts)

    def _parse_selects(self, expr):
        while self._check(PUNCT, "["):
            self._advance()
            first = self._parse_expression()
            if self._accept(PUNCT, ":"):
                second = self._parse_expression()
                self._expect(PUNCT, "]")
                expr = ast.PartSelect(base=expr, left=first, right=second)
            elif self._check(PUNCT, "+:") or self._check(PUNCT, "-:"):
                mode = self._advance().value
                second = self._parse_expression()
                self._expect(PUNCT, "]")
                expr = ast.PartSelect(base=expr, left=first, right=second,
                                      mode=mode)
            else:
                self._expect(PUNCT, "]")
                expr = ast.BitSelect(base=expr, index=first)
        return expr

    def _parse_optional_width(self):
        if self._accept(PUNCT, "["):
            msb = self._parse_expression()
            self._expect(PUNCT, ":")
            lsb = self._parse_expression()
            self._expect(PUNCT, "]")
            return ast.Width(msb=msb, lsb=lsb)
        return None


def _parse_based_literal(text):
    """Convert lexer text like ``8'hFF`` into a :class:`BasedConst`."""
    size_text, _, rest = text.partition("'")
    rest = rest.lstrip("sS") if rest[:1] in "sS" else rest
    base = rest[0].lower()
    digits = rest[1:]
    width = int(size_text.replace("_", "")) if size_text else None
    return ast.BasedConst(width=width, base=base, digits=digits)


def _merge_port_declarations(module):
    """Fold non-ANSI body port declarations into the header port list."""
    body_ports = {}
    items = []
    for item in module.items:
        if isinstance(item, ast.Port):
            body_ports[item.name] = item
            continue
        items.append(item)
    module.items = items
    for port in module.ports:
        declared = body_ports.get(port.name)
        if declared is None:
            continue
        if port.direction is None:
            port.direction = declared.direction
        if port.width is None:
            port.width = declared.width
        port.is_reg = port.is_reg or declared.is_reg
        port.signed = port.signed or declared.signed
    for port in module.ports:
        if port.direction is None:
            port.direction = "input"


def parse(text):
    """Parse preprocessed Verilog source text into a SourceFile."""
    return Parser(tokenize(text)).parse()


def parse_module(text):
    """Parse text expected to contain exactly one module; return it."""
    source = parse(text)
    if len(source.modules) != 1:
        raise ParseError(
            f"expected exactly one module, found {len(source.modules)}")
    return source.modules[0]
