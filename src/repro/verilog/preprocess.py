"""Verilog preprocessor: comments, ```define``, ```include``, conditionals.

This implements the "preprocess" phase of the GNN4IP DFG pipeline (Fig. 2 of
the paper): the source is cleaned of directives and flattened into a single
compilation unit before lexing.
"""

import re
from pathlib import Path

from repro.errors import PreprocessorError

_DIRECTIVE_RE = re.compile(r"^\s*`(\w+)\s*(.*)$")
_MACRO_USE_RE = re.compile(r"`(\w+)")
#: Directives that are simply dropped — they carry no dataflow information.
_IGNORED_DIRECTIVES = frozenset({
    "timescale", "default_nettype", "celldefine", "endcelldefine",
    "resetall", "line", "pragma",
})
_MAX_MACRO_DEPTH = 32


def strip_comments(text):
    """Remove ``//`` and ``/* */`` comments, preserving line structure.

    Block comments are replaced by an equivalent number of newlines so that
    line numbers in later error messages stay accurate.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        char = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if char == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif char == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            if end < 0:
                raise PreprocessorError("unterminated block comment")
            out.append("\n" * text.count("\n", i, end))
            i = end + 2
        elif char == '"':
            end = i + 1
            while end < n and text[end] != '"':
                if text[end] == "\n":
                    raise PreprocessorError("unterminated string literal")
                end += 1
            out.append(text[i:end + 1])
            i = end + 1
        else:
            out.append(char)
            i += 1
    return "".join(out)


class Preprocessor:
    """Expands directives and produces a single flat source string.

    Args:
        include_dirs: directories searched by ```include``.
        defines: initial macro table (name -> replacement text).
        include_sources: in-memory mapping of file name -> source text; it is
            consulted before the filesystem, which lets generated corpora use
            includes without touching disk.
    """

    def __init__(self, include_dirs=(), defines=None, include_sources=None):
        self._include_dirs = [Path(d) for d in include_dirs]
        self._defines = dict(defines or {})
        self._include_sources = dict(include_sources or {})

    @property
    def defines(self):
        """The current macro table (name -> replacement text)."""
        return dict(self._defines)

    def process(self, text):
        """Return preprocessed source for ``text``."""
        return "\n".join(self._process_lines(strip_comments(text).split("\n"),
                                             depth=0))

    def process_file(self, path):
        """Read ``path`` and preprocess its contents."""
        return self.process(Path(path).read_text())

    # ------------------------------------------------------------------
    def _process_lines(self, lines, depth):
        if depth > 16:
            raise PreprocessorError("include depth exceeded (recursive include?)")
        output = []
        # Stack of booleans: is the current conditional region active?
        cond_stack = []
        taken_stack = []
        for line in lines:
            match = _DIRECTIVE_RE.match(line)
            if match:
                name, rest = match.group(1), match.group(2).strip()
                handled = self._handle_directive(
                    name, rest, output, cond_stack, taken_stack, depth)
                if handled:
                    continue
            if all(cond_stack):
                output.append(self._expand_macros(line))
            else:
                output.append("")
        if cond_stack:
            raise PreprocessorError("unterminated `ifdef")
        return output

    def _handle_directive(self, name, rest, output, cond_stack, taken_stack,
                          depth):
        """Process one directive line; returns False for macro-use lines."""
        active = all(cond_stack)
        if name == "ifdef":
            cond = active and rest.split()[0] in self._defines if rest else False
            cond_stack.append(cond)
            taken_stack.append(cond)
        elif name == "ifndef":
            cond = active and bool(rest) and rest.split()[0] not in self._defines
            cond_stack.append(cond)
            taken_stack.append(cond)
        elif name == "elsif":
            if not cond_stack:
                raise PreprocessorError("`elsif without `ifdef")
            parent_active = all(cond_stack[:-1])
            cond = (parent_active and not taken_stack[-1]
                    and bool(rest) and rest.split()[0] in self._defines)
            cond_stack[-1] = cond
            taken_stack[-1] = taken_stack[-1] or cond
        elif name == "else":
            if not cond_stack:
                raise PreprocessorError("`else without `ifdef")
            parent_active = all(cond_stack[:-1])
            cond_stack[-1] = parent_active and not taken_stack[-1]
            taken_stack[-1] = True
        elif name == "endif":
            if not cond_stack:
                raise PreprocessorError("`endif without `ifdef")
            cond_stack.pop()
            taken_stack.pop()
        elif not active:
            pass  # directives inside a dead region are skipped
        elif name == "define":
            self._handle_define(rest)
        elif name == "undef":
            self._defines.pop(rest.split()[0], None) if rest else None
        elif name == "include":
            output.extend(self._handle_include(rest, depth))
        elif name in _IGNORED_DIRECTIVES:
            pass
        else:
            # Unknown directive at line start: treat the line as macro use.
            return False
        return True

    def _handle_define(self, rest):
        parts = rest.split(None, 1)
        if not parts:
            raise PreprocessorError("`define without a macro name")
        name = parts[0]
        if "(" in name:
            raise PreprocessorError(
                f"function-like macro {name!r} is not supported")
        self._defines[name] = parts[1].strip() if len(parts) > 1 else ""

    def _handle_include(self, rest, depth):
        file_name = rest.strip().strip('"<>')
        if not file_name:
            raise PreprocessorError("`include without a file name")
        if file_name in self._include_sources:
            source = self._include_sources[file_name]
        else:
            source = self._read_include(file_name)
        lines = strip_comments(source).split("\n")
        return self._process_lines(lines, depth + 1)

    def _read_include(self, file_name):
        for directory in self._include_dirs:
            candidate = directory / file_name
            if candidate.exists():
                return candidate.read_text()
        raise PreprocessorError(f"cannot find include file {file_name!r}")

    def _expand_macros(self, line, depth=0):
        if "`" not in line:
            return line
        if depth > _MAX_MACRO_DEPTH:
            raise PreprocessorError("macro expansion too deep (recursive macro?)")

        def replace(match):
            name = match.group(1)
            if name in self._defines:
                return self._defines[name]
            raise PreprocessorError(f"undefined macro `{name}")

        expanded = _MACRO_USE_RE.sub(replace, line)
        if "`" in expanded:
            expanded = self._expand_macros(expanded, depth + 1)
        return expanded


def preprocess(text, include_dirs=(), defines=None, include_sources=None):
    """One-shot convenience wrapper around :class:`Preprocessor`."""
    processor = Preprocessor(include_dirs=include_dirs, defines=defines,
                             include_sources=include_sources)
    return processor.process(text)
