"""Hand-written lexer for the synthesizable Verilog subset.

The lexer is a straightforward single-pass scanner.  It assumes comments and
compiler directives have already been handled by
:mod:`repro.verilog.preprocess`; stray block comments are still tolerated so
the lexer can also be used standalone on clean snippets.
"""

from repro.errors import LexerError
from repro.verilog.tokens import (
    BASED_NUMBER,
    EOF,
    IDENT,
    KEYWORD,
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    NUMBER,
    PUNCT,
    SINGLE_CHAR_OPERATORS,
    STRING,
    Token,
)

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")
_BASE_CHARS = frozenset("bBoOdDhH")
_BASED_DIGITS = frozenset("0123456789abcdefABCDEFxXzZ?_")


class Lexer:
    """Tokenizes Verilog source text.

    Usage::

        tokens = Lexer(source).tokenize()
    """

    def __init__(self, text):
        self._text = text
        self._pos = 0
        self._line = 1
        self._line_start = 0

    def tokenize(self):
        """Return the full token list, terminated by a single EOF token."""
        tokens = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind == EOF:
                return tokens

    # ------------------------------------------------------------------
    def _column(self):
        return self._pos - self._line_start + 1

    def _error(self, message):
        raise LexerError(message, line=self._line, column=self._column())

    def _peek(self, offset=0):
        index = self._pos + offset
        if index < len(self._text):
            return self._text[index]
        return ""

    def _advance_line(self):
        self._line += 1
        self._line_start = self._pos

    def _skip_whitespace_and_comments(self):
        text = self._text
        while self._pos < len(text):
            char = text[self._pos]
            if char == "\n":
                self._pos += 1
                self._advance_line()
            elif char in " \t\r\f":
                self._pos += 1
            elif char == "/" and self._peek(1) == "/":
                while self._pos < len(text) and text[self._pos] != "\n":
                    self._pos += 1
            elif char == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self):
        text = self._text
        self._pos += 2
        while self._pos < len(text):
            if text[self._pos] == "\n":
                self._pos += 1
                self._advance_line()
            elif text[self._pos] == "*" and self._peek(1) == "/":
                self._pos += 2
                return
            else:
                self._pos += 1
        self._error("unterminated block comment")

    # ------------------------------------------------------------------
    def _next_token(self):
        self._skip_whitespace_and_comments()
        if self._pos >= len(self._text):
            return Token(EOF, "", self._line, self._column())

        char = self._text[self._pos]
        if char in _IDENT_START or char == "$":
            return self._lex_identifier()
        if char in _DIGITS:
            return self._lex_number()
        if char == "'":
            return self._lex_based_number(size_text="")
        if char == '"':
            return self._lex_string()
        if char == "\\":
            return self._lex_escaped_identifier()
        if char == "`":
            self._error("stray compiler directive (run the preprocessor first)")
        return self._lex_operator()

    def _lex_identifier(self):
        line, column = self._line, self._column()
        start = self._pos
        text = self._text
        while self._pos < len(text) and text[self._pos] in _IDENT_CONT:
            self._pos += 1
        word = text[start:self._pos]
        kind = KEYWORD if word in KEYWORDS else IDENT
        return Token(kind, word, line, column)

    def _lex_escaped_identifier(self):
        line, column = self._line, self._column()
        self._pos += 1
        start = self._pos
        text = self._text
        while self._pos < len(text) and not text[self._pos].isspace():
            self._pos += 1
        word = text[start:self._pos]
        if not word:
            self._error("empty escaped identifier")
        return Token(IDENT, word, line, column)

    def _lex_number(self):
        line, column = self._line, self._column()
        start = self._pos
        text = self._text
        while self._pos < len(text) and text[self._pos] in _DIGITS | {"_"}:
            self._pos += 1
        size_text = text[start:self._pos]
        if self._peek() == "'":
            return self._lex_based_number(size_text, line, column)
        return Token(NUMBER, size_text.replace("_", ""), line, column)

    def _lex_based_number(self, size_text, line=None, column=None):
        if line is None:
            line, column = self._line, self._column()
        text = self._text
        start = self._pos
        self._pos += 1  # consume the apostrophe
        if self._peek() in "sS":
            self._pos += 1
        if self._peek() not in _BASE_CHARS:
            self._error(f"invalid base character {self._peek()!r} in literal")
        self._pos += 1
        digit_start = self._pos
        while self._pos < len(text) and text[self._pos] in _BASED_DIGITS:
            self._pos += 1
        if self._pos == digit_start:
            self._error("based literal has no digits")
        value = size_text + text[start:self._pos]
        return Token(BASED_NUMBER, value, line, column)

    def _lex_string(self):
        line, column = self._line, self._column()
        text = self._text
        self._pos += 1
        start = self._pos
        while self._pos < len(text) and text[self._pos] != '"':
            if text[self._pos] == "\n":
                self._error("unterminated string literal")
            self._pos += 1
        if self._pos >= len(text):
            self._error("unterminated string literal")
        value = text[start:self._pos]
        self._pos += 1
        return Token(STRING, value, line, column)

    def _lex_operator(self):
        line, column = self._line, self._column()
        for op in MULTI_CHAR_OPERATORS:
            if self._text.startswith(op, self._pos):
                self._pos += len(op)
                return Token(PUNCT, op, line, column)
        char = self._text[self._pos]
        if char in SINGLE_CHAR_OPERATORS:
            self._pos += 1
            return Token(PUNCT, char, line, column)
        self._error(f"unexpected character {char!r}")


def tokenize(text):
    """Convenience wrapper: lex ``text`` and return the token list."""
    return Lexer(text).tokenize()
