"""Token definitions for the Verilog lexer.

The lexer produces a flat stream of :class:`Token` objects.  Token kinds are
plain strings (an enum would buy little here and cost verbosity at every
comparison site in the parser).
"""

from dataclasses import dataclass

# Token kinds ---------------------------------------------------------------
IDENT = "IDENT"
NUMBER = "NUMBER"          # plain decimal literal, e.g. 42
BASED_NUMBER = "BASED"     # sized/based literal, e.g. 8'hFF, 'b0101
STRING = "STRING"
KEYWORD = "KEYWORD"
PUNCT = "PUNCT"            # operators and punctuation
EOF = "EOF"

#: Verilog-2001 keywords in the synthesizable subset we accept.  Keeping the
#: set tight means misuse fails loudly at parse time instead of silently.
KEYWORDS = frozenset({
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "integer", "real", "parameter", "localparam", "assign", "always",
    "initial", "begin", "end", "if", "else", "case", "casez", "casex",
    "endcase", "default", "for", "while", "posedge", "negedge", "or",
    "and", "nand", "nor", "xor", "xnor", "not", "buf", "signed",
    "function", "endfunction", "generate", "endgenerate", "genvar",
    "supply0", "supply1",
})

#: Gate primitive keywords (subset of KEYWORDS) recognised as instantiations.
GATE_PRIMITIVES = frozenset({
    "and", "nand", "or", "nor", "xor", "xnor", "not", "buf",
})

#: Multi-character operators, longest first so the lexer can match greedily.
MULTI_CHAR_OPERATORS = (
    "<<<", ">>>", "===", "!==",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "~&", "~|", "~^", "^~",
    "**", "+:", "-:",
)

#: Single-character operators / punctuation.
SINGLE_CHAR_OPERATORS = frozenset("+-*/%<>!&|^~?:=.,;#@(){}[]")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: one of the module-level kind constants.
        value: the matched text (numbers keep their textual form; the parser
            interprets them).
        line: 1-based source line, for error messages.
        column: 1-based source column.
    """

    kind: str
    value: str
    line: int
    column: int

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, L{self.line})"
