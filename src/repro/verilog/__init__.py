"""Verilog front-end: preprocessor, lexer, parser, AST, writer.

This package replaces Pyverilog's parsing layer in the GNN4IP pipeline.  The
typical entry point is::

    from repro.verilog import parse_source

    source = parse_source(verilog_text)
"""

from repro.verilog import ast_nodes as ast
from repro.verilog.lexer import Lexer, tokenize
from repro.verilog.parser import Parser, parse, parse_module
from repro.verilog.preprocess import Preprocessor, preprocess, strip_comments
from repro.verilog.writer import write_expr, write_module, write_source


def parse_source(text, include_dirs=(), defines=None, include_sources=None):
    """Preprocess and parse Verilog text in one step."""
    cleaned = preprocess(text, include_dirs=include_dirs, defines=defines,
                         include_sources=include_sources)
    return parse(cleaned)


__all__ = [
    "ast",
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "parse_module",
    "parse_source",
    "Preprocessor",
    "preprocess",
    "strip_comments",
    "write_expr",
    "write_module",
    "write_source",
]
