"""Abstract syntax tree nodes for the synthesizable Verilog subset.

Nodes are plain dataclasses.  Width expressions are kept symbolic (they may
refer to parameters); :mod:`repro.dataflow.elaborate` evaluates them once
parameter bindings are known.
"""

from dataclasses import dataclass, field


class Node:
    """Base class for every AST node (useful for isinstance checks)."""


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------
class Expression(Node):
    """Base class for expression nodes."""


@dataclass
class Identifier(Expression):
    """A reference to a named signal, parameter, or genvar."""

    name: str

    def __str__(self):
        return self.name


@dataclass
class IntConst(Expression):
    """A plain decimal integer literal such as ``42``."""

    value: int

    def __str__(self):
        return str(self.value)


@dataclass
class BasedConst(Expression):
    """A sized/based literal such as ``8'hFF``.

    Attributes:
        width: declared bit width, or ``None`` for unsized literals.
        base: one of ``b``, ``o``, ``d``, ``h``.
        digits: the digit text (may include ``x``/``z``/``?``/``_``).
    """

    width: int
    base: str
    digits: str

    def __str__(self):
        size = str(self.width) if self.width is not None else ""
        return f"{size}'{self.base}{self.digits}"

    @property
    def value(self):
        """Integer value; x/z/? digits are read as 0."""
        cleaned = self.digits.replace("_", "")
        for unknown in "xXzZ?":
            cleaned = cleaned.replace(unknown, "0")
        radix = {"b": 2, "o": 8, "d": 10, "h": 16}[self.base.lower()]
        return int(cleaned, radix) if cleaned else 0


@dataclass
class StringConst(Expression):
    """A string literal (only used in rare parameter contexts)."""

    value: str

    def __str__(self):
        return f'"{self.value}"'


@dataclass
class UnaryOp(Expression):
    """Unary operator: ``~ ! + - & | ^ ~& ~| ~^``."""

    op: str
    operand: Expression

    def __str__(self):
        return f"({self.op}{self.operand})"


@dataclass
class BinaryOp(Expression):
    """Binary operator such as ``+``, ``&&``, ``<<``."""

    op: str
    left: Expression
    right: Expression

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


@dataclass
class Ternary(Expression):
    """Conditional expression ``cond ? true_value : false_value``."""

    cond: Expression
    true_value: Expression
    false_value: Expression

    def __str__(self):
        return f"({self.cond} ? {self.true_value} : {self.false_value})"


@dataclass
class Concat(Expression):
    """Concatenation ``{a, b, c}``."""

    parts: list

    def __str__(self):
        return "{" + ", ".join(str(p) for p in self.parts) + "}"


@dataclass
class Repeat(Expression):
    """Replication ``{n{expr}}``."""

    count: Expression
    value: Expression

    def __str__(self):
        return "{" + f"{self.count}{{{self.value}}}" + "}"


@dataclass
class BitSelect(Expression):
    """Single-bit select ``sig[index]``."""

    base: Expression
    index: Expression

    def __str__(self):
        return f"{self.base}[{self.index}]"


@dataclass
class PartSelect(Expression):
    """Part select ``sig[msb:lsb]`` or indexed ``sig[base +: width]``.

    ``mode`` is ``":"`` for constant ranges, ``"+:"`` / ``"-:"`` for indexed
    part selects.
    """

    base: Expression
    left: Expression
    right: Expression
    mode: str = ":"

    def __str__(self):
        return f"{self.base}[{self.left} {self.mode} {self.right}]"


@dataclass
class FunctionCall(Expression):
    """Call of a user function or system function (``$signed`` etc.)."""

    name: str
    args: list

    def __str__(self):
        args = ", ".join(str(a) for a in self.args)
        return f"{self.name}({args})"


# --------------------------------------------------------------------------
# Declarations and module items
# --------------------------------------------------------------------------
@dataclass
class Width(Node):
    """A vector range ``[msb:lsb]`` with symbolic bounds."""

    msb: Expression
    lsb: Expression

    def __str__(self):
        return f"[{self.msb}:{self.lsb}]"


@dataclass
class Port(Node):
    """A module port.

    Attributes:
        name: port identifier.
        direction: ``input`` / ``output`` / ``inout`` (or ``None`` when the
            header only lists names, non-ANSI style).
        width: optional :class:`Width`.
        is_reg: whether the port was declared ``output reg``.
        signed: whether declared signed.
    """

    name: str
    direction: str = None
    width: Width = None
    is_reg: bool = False
    signed: bool = False


@dataclass
class NetDecl(Node):
    """A net/variable declaration: ``wire [3:0] a, b;`` etc.

    ``kind`` is ``wire``, ``reg``, ``integer``, ``supply0`` or ``supply1``.
    """

    kind: str
    names: list
    width: Width = None
    signed: bool = False
    line: int = 0


@dataclass
class ParamDecl(Node):
    """``parameter`` / ``localparam`` declaration (single name)."""

    name: str
    value: Expression
    local: bool = False
    width: Width = None


@dataclass
class Assign(Node):
    """Continuous assignment ``assign lhs = rhs;``."""

    lhs: Expression
    rhs: Expression
    line: int = 0


@dataclass
class GateInstance(Node):
    """Primitive gate instantiation, e.g. ``and g1 (out, a, b);``.

    ``args`` lists the connections, output(s) first per the LRM.
    """

    gate: str
    name: str
    args: list
    line: int = 0


@dataclass
class PortConnection(Node):
    """One connection in a module instantiation.

    ``port`` is ``None`` for positional connections.
    """

    port: str
    expr: Expression


@dataclass
class ModuleInstance(Node):
    """Instantiation of a user module."""

    module: str
    name: str
    connections: list
    param_overrides: list = field(default_factory=list)
    line: int = 0


# --------------------------------------------------------------------------
# Statements (inside always/initial)
# --------------------------------------------------------------------------
class Statement(Node):
    """Base class for procedural statements."""


@dataclass
class Block(Statement):
    """``begin ... end`` sequential block."""

    statements: list
    name: str = None


@dataclass
class BlockingAssign(Statement):
    """Procedural blocking assignment ``lhs = rhs;``."""

    lhs: Expression
    rhs: Expression
    line: int = 0


@dataclass
class NonblockingAssign(Statement):
    """Procedural non-blocking assignment ``lhs <= rhs;``."""

    lhs: Expression
    rhs: Expression
    line: int = 0


@dataclass
class If(Statement):
    """``if (cond) then_stmt else else_stmt``; ``else_stmt`` may be None."""

    cond: Expression
    then_stmt: Statement
    else_stmt: Statement = None


@dataclass
class CaseItem(Node):
    """One arm of a case statement; ``patterns`` empty means ``default``."""

    patterns: list
    statement: Statement


@dataclass
class Case(Statement):
    """``case``/``casez``/``casex`` statement."""

    expr: Expression
    items: list
    kind: str = "case"


@dataclass
class For(Statement):
    """``for (init; cond; step) body`` — used only with genvar-style loops."""

    init: Statement
    cond: Expression
    step: Statement
    body: Statement


@dataclass
class SensItem(Node):
    """One sensitivity-list entry: ``edge`` is ``posedge``/``negedge``/``level``."""

    edge: str
    signal: Expression


@dataclass
class Always(Node):
    """An ``always @(...)`` block.  ``sens_list`` empty means ``@*``."""

    sens_list: list
    statement: Statement
    line: int = 0

    @property
    def is_clocked(self):
        """True when any sensitivity item is edge-triggered."""
        return any(item.edge in ("posedge", "negedge") for item in self.sens_list)


@dataclass
class Initial(Node):
    """An ``initial`` block (parsed, ignored by dataflow analysis)."""

    statement: Statement


@dataclass
class Module(Node):
    """A Verilog module definition."""

    name: str
    ports: list
    items: list
    params: list = field(default_factory=list)
    line: int = 0

    def port_names(self):
        """Names of ports in declaration order."""
        return [port.name for port in self.ports]

    def find_port(self, name):
        """Return the :class:`Port` with ``name`` or ``None``."""
        for port in self.ports:
            if port.name == name:
                return port
        return None


@dataclass
class SourceFile(Node):
    """A parsed source file: an ordered list of module definitions."""

    modules: list

    def module_map(self):
        """Mapping from module name to :class:`Module`."""
        return {module.name: module for module in self.modules}
