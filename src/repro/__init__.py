"""GNN4IP reproduction: graph-learning based hardware IP piracy detection.

:mod:`repro.api` is the **stable public surface** (``Detector`` /
``Corpus`` / ``Session`` facades; see ``docs/api.md``), served over HTTP
by :mod:`repro.server` with :mod:`repro.client` as its client.  The
implementation layers mirror the paper's pipeline:

* :mod:`repro.verilog` — Verilog front-end (preprocess / lex / parse).
* :mod:`repro.dataflow` — data-flow graph extraction (Fig. 2 pipeline).
* :mod:`repro.ir` — unified GraphIR + extraction frontends.
* :mod:`repro.nn` — numpy autograd + GNN layers.
* :mod:`repro.core` — ``hw2vec`` encoder and ``GNN4IP`` pair model.
* :mod:`repro.index` — corpus-scale fingerprint index + query engine.
* :mod:`repro.designs` — synthetic hardware-design corpus generators.
* :mod:`repro.obfuscate` — behaviour-preserving netlist obfuscation.
* :mod:`repro.baselines` — classical graph-similarity rivals.
"""

__version__ = "1.0.0"
