"""GNN4IP reproduction: graph-learning based hardware IP piracy detection.

The public API mirrors the paper's pipeline:

* :mod:`repro.verilog` — Verilog front-end (preprocess / lex / parse).
* :mod:`repro.dataflow` — data-flow graph extraction (Fig. 2 pipeline).
* :mod:`repro.nn` — numpy autograd + GNN layers.
* :mod:`repro.core` — ``hw2vec`` encoder and ``GNN4IP`` pair model.
* :mod:`repro.designs` — synthetic hardware-design corpus generators.
* :mod:`repro.obfuscate` — behaviour-preserving netlist obfuscation.
* :mod:`repro.baselines` — classical graph-similarity rivals.
"""

__version__ = "1.0.0"
