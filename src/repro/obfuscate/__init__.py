"""Behaviour-preserving obfuscation at netlist and RTL level."""

from repro.obfuscate.rtl_variants import (
    make_rtl_variant,
    rename_module_signals,
    shuffle_module_items,
    swap_commutative_operands,
)
from repro.obfuscate.transforms import (
    TRANSFORMS,
    decompose_gates,
    demorgan_rewrite,
    duplicate_logic,
    insert_buffer_chains,
    insert_inverter_pairs,
    obfuscate,
    rename_wires,
)

__all__ = [
    "TRANSFORMS", "obfuscate", "rename_wires", "insert_inverter_pairs",
    "insert_buffer_chains", "decompose_gates", "demorgan_rewrite",
    "duplicate_logic",
    "make_rtl_variant", "rename_module_signals", "shuffle_module_items",
    "swap_commutative_operands",
]
