"""RTL-level variant generation: same design, different-looking code.

These rewrites model what a pirate (or just a second engineer) does to RTL
source: rename internal signals, shuffle declaration and assignment order,
and swap operands of commutative operators.  All are semantics-preserving.
"""

import numpy as np

from repro.dataflow.elaborate import rewrite_expr, _rewrite_statement
from repro.verilog import ast_nodes as ast
from repro.verilog.parser import parse
from repro.verilog.writer import write_source

_COMMUTATIVE = frozenset({"+", "*", "&", "|", "^", "~^", "^~", "&&", "||",
                          "==", "!="})


def _swap_commutative(expr, rng, probability):
    """Recursively swap operands of commutative binary operators."""
    if isinstance(expr, ast.BinaryOp):
        left = _swap_commutative(expr.left, rng, probability)
        right = _swap_commutative(expr.right, rng, probability)
        if expr.op in _COMMUTATIVE and rng.random() < probability:
            left, right = right, left
        return ast.BinaryOp(expr.op, left, right)
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op,
                           _swap_commutative(expr.operand, rng, probability))
    if isinstance(expr, ast.Ternary):
        return ast.Ternary(_swap_commutative(expr.cond, rng, probability),
                           _swap_commutative(expr.true_value, rng, probability),
                           _swap_commutative(expr.false_value, rng, probability))
    if isinstance(expr, ast.Concat):
        return ast.Concat([_swap_commutative(p, rng, probability)
                           for p in expr.parts])
    return expr


def _local_names(module):
    names = set()
    port_names = set(module.port_names())
    for item in module.items:
        if isinstance(item, ast.NetDecl):
            names.update(n for n in item.names if n not in port_names)
    return sorted(names)


def rename_module_signals(module, rng, prefix=None):
    """Rename every non-port signal; returns a rewritten copy."""
    locals_ = _local_names(module)
    order = list(rng.permutation(len(locals_)))
    prefix = prefix if prefix is not None else f"sig{int(rng.integers(10, 99))}"
    mapping = {old: ast.Identifier(f"{prefix}_{order[i]}")
               for i, old in enumerate(locals_)}
    name_map = {old: f"{prefix}_{order[i]}" for i, old in enumerate(locals_)}

    items = []
    for item in module.items:
        if isinstance(item, ast.NetDecl):
            items.append(ast.NetDecl(item.kind,
                                     [name_map.get(n, n) for n in item.names],
                                     item.width, item.signed, item.line))
        elif isinstance(item, ast.Assign):
            items.append(ast.Assign(rewrite_expr(item.lhs, mapping),
                                    rewrite_expr(item.rhs, mapping),
                                    item.line))
        elif isinstance(item, ast.GateInstance):
            items.append(ast.GateInstance(
                item.gate, item.name,
                [rewrite_expr(a, mapping) for a in item.args], item.line))
        elif isinstance(item, ast.Always):
            sens = [ast.SensItem(s.edge, rewrite_expr(s.signal, mapping))
                    for s in item.sens_list]
            items.append(ast.Always(sens,
                                    _rewrite_statement(item.statement, mapping),
                                    item.line))
        elif isinstance(item, ast.ModuleInstance):
            connections = [ast.PortConnection(c.port,
                                              rewrite_expr(c.expr, mapping)
                                              if c.expr is not None else None)
                           for c in item.connections]
            items.append(ast.ModuleInstance(item.module, item.name,
                                            connections,
                                            list(item.param_overrides),
                                            item.line))
        else:
            items.append(item)
    return ast.Module(module.name, list(module.ports), items,
                      list(module.params), module.line)


def shuffle_module_items(module, rng):
    """Shuffle declarations and concurrent items (order is irrelevant)."""
    decls = [i for i in module.items if isinstance(i, ast.NetDecl)]
    params = [i for i in module.items if isinstance(i, ast.ParamDecl)]
    concurrent = [i for i in module.items
                  if not isinstance(i, (ast.NetDecl, ast.ParamDecl))]
    rng.shuffle(decls)
    rng.shuffle(concurrent)
    return ast.Module(module.name, list(module.ports),
                      params + decls + concurrent,
                      list(module.params), module.line)


def swap_commutative_operands(module, rng, probability=0.5):
    """Swap operands of commutative operators throughout the module."""
    items = []
    for item in module.items:
        if isinstance(item, ast.Assign):
            items.append(ast.Assign(item.lhs,
                                    _swap_commutative(item.rhs, rng,
                                                      probability),
                                    item.line))
        elif isinstance(item, ast.Always):
            items.append(ast.Always(list(item.sens_list),
                                    _swap_statement(item.statement, rng,
                                                    probability),
                                    item.line))
        else:
            items.append(item)
    return ast.Module(module.name, list(module.ports), items,
                      list(module.params), module.line)


def _swap_statement(stmt, rng, probability):
    if isinstance(stmt, ast.Block):
        return ast.Block([_swap_statement(s, rng, probability)
                          for s in stmt.statements], stmt.name)
    if isinstance(stmt, ast.BlockingAssign):
        return ast.BlockingAssign(stmt.lhs,
                                  _swap_commutative(stmt.rhs, rng, probability),
                                  stmt.line)
    if isinstance(stmt, ast.NonblockingAssign):
        return ast.NonblockingAssign(stmt.lhs,
                                     _swap_commutative(stmt.rhs, rng,
                                                       probability),
                                     stmt.line)
    if isinstance(stmt, ast.If):
        else_stmt = (_swap_statement(stmt.else_stmt, rng, probability)
                     if stmt.else_stmt is not None else None)
        return ast.If(stmt.cond,
                      _swap_statement(stmt.then_stmt, rng, probability),
                      else_stmt)
    if isinstance(stmt, ast.Case):
        items = [ast.CaseItem(list(i.patterns),
                              _swap_statement(i.statement, rng, probability))
                 for i in stmt.items]
        return ast.Case(stmt.expr, items, stmt.kind)
    if isinstance(stmt, ast.For):
        return ast.For(stmt.init, stmt.cond, stmt.step,
                       _swap_statement(stmt.body, rng, probability))
    return stmt


def make_rtl_variant(verilog_text, seed=0, rename=True, shuffle=True,
                     swap_operands=True):
    """Produce a stylistic variant of ``verilog_text`` (all modules).

    Returns:
        Verilog text implementing the identical design.
    """
    rng = np.random.default_rng(seed)
    source = parse(verilog_text)
    modules = []
    for module in source.modules:
        current = module
        if rename:
            current = rename_module_signals(current, rng)
        if swap_operands:
            current = swap_commutative_operands(current, rng)
        if shuffle:
            current = shuffle_module_items(current, rng)
        modules.append(current)
    return write_source(ast.SourceFile(modules))
