"""Behaviour-preserving netlist obfuscation transforms (paper §IV-E).

Each transform takes a :class:`~repro.netlist.Netlist` and an RNG and
returns a *new* netlist computing the same function with a different
structure — the situation GNN4IP must see through when an adversary
"complicates the original IP to deceive the IP owner".  The test suite
verifies every transform with random-vector equivalence checking.
"""

import numpy as np

from repro.netlist.cells import DFF
from repro.netlist.netlist import CONST0, CONST1, Gate, Netlist

_PROTECTED = frozenset({CONST0, CONST1})


def _fresh(netlist, base, used):
    index = 0
    while f"{base}{index}" in used:
        index += 1
    name = f"{base}{index}"
    used.add(name)
    return name


def rename_wires(netlist, rng):
    """Randomly rename every internal net and gate instance."""
    io_nets = set(netlist.inputs) | set(netlist.outputs) | set(netlist.clocks)
    internal = sorted(netlist.nets() - io_nets)
    order = list(rng.permutation(len(internal)))
    mapping = {old: f"w{order[i]}" for i, old in enumerate(internal)}

    def rename(net):
        return mapping.get(net, net)

    out = Netlist(netlist.name, list(netlist.inputs), list(netlist.outputs),
                  clocks=list(netlist.clocks))
    gate_order = list(rng.permutation(len(netlist.gates)))
    for new_index, gate in enumerate(netlist.gates):
        out.gates.append(Gate(gate.cell, f"u{gate_order[new_index]}",
                              rename(gate.output),
                              [rename(n) for n in gate.inputs]))
    return out


def _wirable_inputs(netlist):
    """(gate_index, pin_index) pairs safe to rewire through extra logic.

    Constants stay put, and DFF clock pins are off limits: a real
    obfuscator never routes the clock tree through logic, and doing so
    here would turn an internal net into a clock on re-synthesis.
    """
    return [(gi, pi)
            for gi, gate in enumerate(netlist.gates)
            for pi, net in enumerate(gate.inputs)
            if net not in _PROTECTED
            and not (gate.cell == DFF and pi == 1)]


def insert_inverter_pairs(netlist, rng, fraction=0.3):
    """Route random gate inputs through double inverters."""
    out = netlist.copy()
    used = out.nets() | _PROTECTED
    candidates = _wirable_inputs(out)
    if not candidates:
        return out
    count = max(1, int(len(candidates) * fraction))
    chosen = rng.choice(len(candidates), size=min(count, len(candidates)),
                        replace=False)
    new_gates = []
    for index in chosen:
        gate_index, input_index = candidates[int(index)]
        gate = out.gates[gate_index]
        source = gate.inputs[input_index]
        mid = _fresh(out, "inv_a", used)
        end = _fresh(out, "inv_b", used)
        new_gates.append(Gate("not", _fresh(out, "gi", used), mid, [source]))
        new_gates.append(Gate("not", _fresh(out, "gj", used), end, [mid]))
        gate.inputs[input_index] = end
    out.gates.extend(new_gates)
    return out


def insert_buffer_chains(netlist, rng, fraction=0.2, max_length=3):
    """Insert buffer chains on random gate input connections."""
    out = netlist.copy()
    used = out.nets() | _PROTECTED
    candidates = _wirable_inputs(out)
    if not candidates:
        return out
    count = max(1, int(len(candidates) * fraction))
    chosen = rng.choice(len(candidates), size=min(count, len(candidates)),
                        replace=False)
    new_gates = []
    for index in chosen:
        gate_index, input_index = candidates[int(index)]
        gate = out.gates[gate_index]
        current = gate.inputs[input_index]
        for _ in range(int(rng.integers(1, max_length + 1))):
            nxt = _fresh(out, "bufn", used)
            new_gates.append(Gate("buf", _fresh(out, "gb", used), nxt,
                                  [current]))
            current = nxt
        gate.inputs[input_index] = current
    out.gates.extend(new_gates)
    return out


def decompose_gates(netlist, rng, fraction=0.5):
    """Rewrite random gates into equivalent lower-level implementations.

    XOR -> (a AND ~b) OR (~a AND b); XNOR -> NOT(XOR...); AND -> NOT(NAND);
    OR -> NOT(NOR); MUX -> AND/OR/NOT network.
    """
    out = Netlist(netlist.name, list(netlist.inputs), list(netlist.outputs),
                  clocks=list(netlist.clocks))
    used = netlist.nets() | _PROTECTED

    def emit(cell, output, inputs):
        out.gates.append(Gate(cell, f"d{len(out.gates)}", output,
                              list(inputs)))

    for gate in netlist.gates:
        expand = (gate.cell in ("xor", "xnor", "and", "or", "mux")
                  and len(gate.inputs) == len(set(gate.inputs))
                  and rng.random() < fraction)
        if not expand:
            out.gates.append(Gate(gate.cell, gate.name, gate.output,
                                  list(gate.inputs)))
            continue
        if gate.cell in ("xor", "xnor") and len(gate.inputs) == 2:
            a, b = gate.inputs
            na = _fresh(out, "dx", used)
            nb = _fresh(out, "dx", used)
            t0 = _fresh(out, "dx", used)
            t1 = _fresh(out, "dx", used)
            emit("not", na, [a])
            emit("not", nb, [b])
            emit("and", t0, [a, nb])
            emit("and", t1, [na, b])
            if gate.cell == "xor":
                emit("or", gate.output, [t0, t1])
            else:
                t2 = _fresh(out, "dx", used)
                emit("or", t2, [t0, t1])
                emit("not", gate.output, [t2])
        elif gate.cell == "and":
            mid = _fresh(out, "dn", used)
            emit("nand", mid, gate.inputs)
            emit("not", gate.output, [mid])
        elif gate.cell == "or":
            mid = _fresh(out, "dn", used)
            emit("nor", mid, gate.inputs)
            emit("not", gate.output, [mid])
        elif gate.cell == "mux":
            d0, d1, sel = gate.inputs
            nsel = _fresh(out, "dm", used)
            t0 = _fresh(out, "dm", used)
            t1 = _fresh(out, "dm", used)
            emit("not", nsel, [sel])
            emit("and", t0, [d0, nsel])
            emit("and", t1, [d1, sel])
            emit("or", gate.output, [t0, t1])
        else:
            out.gates.append(Gate(gate.cell, gate.name, gate.output,
                                  list(gate.inputs)))
    return out


def demorgan_rewrite(netlist, rng, fraction=0.4):
    """Apply De Morgan: AND -> NOT(OR(NOT a, NOT b)) and dually for OR."""
    out = Netlist(netlist.name, list(netlist.inputs), list(netlist.outputs),
                  clocks=list(netlist.clocks))
    used = netlist.nets() | _PROTECTED

    def emit(cell, output, inputs):
        out.gates.append(Gate(cell, f"m{len(out.gates)}", output,
                              list(inputs)))

    for gate in netlist.gates:
        if gate.cell in ("and", "or") and rng.random() < fraction:
            inverted = []
            for net in gate.inputs:
                inv = _fresh(out, "dm", used)
                emit("not", inv, [net])
                inverted.append(inv)
            mid = _fresh(out, "dm", used)
            emit("or" if gate.cell == "and" else "and", mid, inverted)
            emit("not", gate.output, [mid])
        else:
            out.gates.append(Gate(gate.cell, gate.name, gate.output,
                                  list(gate.inputs)))
    return out


def duplicate_logic(netlist, rng, fraction=0.15):
    """Duplicate random combinational gates and split their fanout."""
    out = netlist.copy()
    used = out.nets() | _PROTECTED
    driver_indices = {g.output: i for i, g in enumerate(out.gates)}
    combinational = [i for i, g in enumerate(out.gates) if g.cell != DFF]
    if not combinational:
        return out
    count = max(1, int(len(combinational) * fraction))
    chosen = rng.choice(len(combinational),
                        size=min(count, len(combinational)), replace=False)
    new_gates = []
    for index in chosen:
        gate = out.gates[combinational[int(index)]]
        readers = [(gi, pi) for gi, other in enumerate(out.gates)
                   for pi, net in enumerate(other.inputs)
                   if net == gate.output]
        if len(readers) < 2:
            continue
        twin_out = _fresh(out, "dup", used)
        new_gates.append(Gate(gate.cell, _fresh(out, "gd", used), twin_out,
                              list(gate.inputs)))
        # Route roughly half of the fanout through the twin.
        for gi, pi in readers[::2]:
            out.gates[gi].inputs[pi] = twin_out
    out.gates.extend(new_gates)
    del driver_indices
    return out


#: Transform registry used by :func:`obfuscate`.
TRANSFORMS = {
    "rename": rename_wires,
    "inverter_pairs": insert_inverter_pairs,
    "buffers": insert_buffer_chains,
    "decompose": decompose_gates,
    "demorgan": demorgan_rewrite,
    "duplicate": duplicate_logic,
}


def obfuscate(netlist, seed=0, strength=2, transforms=None, name=None):
    """Apply a random pipeline of transforms; returns the obfuscated copy.

    Args:
        netlist: source netlist (left untouched).
        seed: RNG seed — different seeds give different obfuscated instances.
        strength: number of structural transforms applied before the final
            rename pass.
        transforms: optional explicit list of transform names.

    Returns:
        A new, validated netlist.
    """
    rng = np.random.default_rng(seed)
    if transforms is None:
        pool = [n for n in TRANSFORMS if n != "rename"]
        picks = rng.choice(len(pool), size=min(strength, len(pool)),
                           replace=False)
        transforms = [pool[int(i)] for i in picks]
    current = netlist
    for transform_name in transforms:
        current = TRANSFORMS[transform_name](current, rng)
    current = rename_wires(current, rng)
    if name is not None:
        current.name = name
    current.validate()
    return current
