"""Pair datasets for piracy detection (paper §IV-A).

Hardware instances are grouped by the design they implement.  Every
unordered pair of instances is labeled *similar* (+1, piracy) when both
come from the same design and *different* (-1, no piracy) otherwise.  Pairs
are split into train/test sets (the paper holds out 20 % of pairs).
"""

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError


@dataclass
class GraphRecord:
    """One hardware instance: its design family, instance id, and DFG."""

    design: str
    instance: str
    graph: object
    kind: str = "rtl"  # "rtl" or "netlist"


@dataclass
class PairDataset:
    """Graphs plus labeled index pairs split into train and test."""

    records: list
    train_pairs: list = field(default_factory=list)
    test_pairs: list = field(default_factory=list)

    @property
    def num_graphs(self):
        return len(self.records)

    @property
    def num_pairs(self):
        return len(self.train_pairs) + len(self.test_pairs)

    def graphs(self):
        return [record.graph for record in self.records]

    def summary(self):
        """Dataset-size summary mirroring Table I's columns."""
        positives = sum(1 for _, _, label in self.train_pairs + self.test_pairs
                        if label == 1)
        return {
            "graphs": self.num_graphs,
            "pairs": self.num_pairs,
            "similar_pairs": positives,
            "different_pairs": self.num_pairs - positives,
            "train_pairs": len(self.train_pairs),
            "test_pairs": len(self.test_pairs),
        }


def make_pairs(records):
    """All unordered index pairs with +1/-1 similarity labels."""
    pairs = []
    for i in range(len(records)):
        for j in range(i + 1, len(records)):
            label = 1 if records[i].design == records[j].design else -1
            pairs.append((i, j, label))
    return pairs


def split_pairs(pairs, test_fraction=0.2, seed=0):
    """Shuffle and split pairs; keeps both classes in both splits.

    The split is stratified by label so small corpora do not end up with a
    test set that lacks positive pairs.
    """
    if not 0.0 < test_fraction < 1.0:
        raise DatasetError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    by_label = {1: [], -1: []}
    for pair in pairs:
        by_label[pair[2]].append(pair)
    train, test = [], []
    for label_pairs in by_label.values():
        label_pairs = list(label_pairs)
        rng.shuffle(label_pairs)
        cut = int(round(len(label_pairs) * test_fraction))
        test.extend(label_pairs[:cut])
        train.extend(label_pairs[cut:])
    rng.shuffle(train)
    rng.shuffle(test)
    return train, test


def subsample_negatives(pairs, max_negative_ratio, seed=0):
    """Keep all similar pairs and at most ratio x as many different pairs.

    The paper's dataset is built the same way: 19094 similar vs 66631
    different pairs (about 1:3.5) — far from the all-pairs ratio, so the
    authors subsampled the cross-design combinations.
    """
    positives = [p for p in pairs if p[2] == 1]
    negatives = [p for p in pairs if p[2] == -1]
    limit = int(round(len(positives) * max_negative_ratio))
    if limit < 1:
        raise DatasetError("negative ratio leaves no different pairs")
    if len(negatives) > limit:
        rng = np.random.default_rng(seed)
        keep = rng.choice(len(negatives), size=limit, replace=False)
        negatives = [negatives[int(i)] for i in keep]
    return positives + negatives


def build_pair_dataset(records, test_fraction=0.2, seed=0,
                       max_negative_ratio=None):
    """Build a :class:`PairDataset` from graph records.

    Args:
        records: :class:`GraphRecord` list.
        test_fraction: held-out pair fraction (paper: 0.2).
        max_negative_ratio: if set, subsample different pairs down to this
            multiple of the similar-pair count (the paper's corpus uses
            about 3.5).
    """
    records = list(records)
    if len(records) < 2:
        raise DatasetError("need at least two graphs to form pairs")
    designs = {record.design for record in records}
    if len(designs) < 2:
        raise DatasetError("need at least two distinct designs")
    pairs = make_pairs(records)
    if max_negative_ratio is not None:
        pairs = subsample_negatives(pairs, max_negative_ratio, seed=seed)
    train, test = split_pairs(pairs, test_fraction=test_fraction, seed=seed)
    if not any(label == 1 for _, _, label in train):
        raise DatasetError("train split has no similar pairs")
    return PairDataset(records=records, train_pairs=train, test_pairs=test)


def batches(pairs, batch_size, seed=None):
    """Yield shuffled batches of pairs (paper: batch size 64)."""
    if batch_size < 1:
        raise DatasetError("batch size must be >= 1")
    pairs = list(pairs)
    if seed is not None:
        np.random.default_rng(seed).shuffle(pairs)
    for start in range(0, len(pairs), batch_size):
        yield pairs[start:start + batch_size]
