"""IP library matching: rank owned designs against a suspect design.

This is the deployment workflow around Algorithm 1: an IP vendor keeps an
indexed library of embeddings for every owned design; a suspect design is
embedded once and compared against the whole library in a single
vectorized pass.
"""

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


@dataclass
class Match:
    """One library hit."""

    design: str
    instance: str
    score: float
    is_piracy: bool


class IPMatcher:
    """Embedding index over an IP library.

    Args:
        model: a trained :class:`~repro.core.gnn4ip.GNN4IP`.

    Usage::

        matcher = IPMatcher(model)
        matcher.add_records(records)           # GraphRecord list
        hits = matcher.match(suspect_graph)    # sorted Match list
    """

    def __init__(self, model):
        self.model = model
        self._designs = []
        self._instances = []
        self._rows = []      # pending rows, stacked lazily on match()
        self._matrix = None  # (n, hidden) L2-normalized embeddings

    def __len__(self):
        return len(self._instances)

    def add(self, design, instance, graph):
        """Embed one design instance and add it to the index.

        Rows accumulate in a list and are stacked on the next
        :meth:`match`, so N adds cost O(N) total instead of the O(N^2)
        a per-add ``vstack`` of the full matrix would.
        """
        embedding = self.model.encoder.embed(graph)
        norm = np.linalg.norm(embedding)
        if norm == 0:
            raise ModelError(f"zero embedding for {instance!r}")
        self._designs.append(design)
        self._instances.append(instance)
        self._rows.append(embedding / norm)

    def add_records(self, records):
        """Add a list of :class:`~repro.core.dataset.GraphRecord`."""
        for record in records:
            self.add(record.design, record.instance, record.graph)

    def match(self, graph, top_k=None):
        """Score ``graph`` against every indexed instance.

        Returns:
            :class:`Match` list sorted by descending score (top_k first
            entries when given).
        """
        if self._rows:
            pending = np.stack(self._rows)
            self._matrix = (pending if self._matrix is None
                            else np.vstack([self._matrix, pending]))
            self._rows = []
        if self._matrix is None:
            raise ModelError("the IP library index is empty")
        embedding = self.model.encoder.embed(graph)
        norm = np.linalg.norm(embedding)
        if norm == 0:
            raise ModelError("zero embedding for the suspect design")
        scores = self._matrix @ (embedding / norm)
        order = np.argsort(-scores)
        if top_k is not None:
            order = order[:top_k]
        return [Match(design=self._designs[i], instance=self._instances[i],
                      score=float(scores[i]),
                      is_piracy=bool(scores[i] > self.model.delta))
                for i in order]

    def best_design(self, graph):
        """The best-matching design name and score (None if empty)."""
        matches = self.match(graph, top_k=1)
        if not matches:
            return None, 0.0
        return matches[0].design, matches[0].score

    def piracy_report(self, graph):
        """Per-design maximum score — one row per owned design."""
        best = {}
        for match in self.match(graph):
            if match.design not in best or match.score > best[match.design].score:
                best[match.design] = match
        return sorted(best.values(), key=lambda m: -m.score)
