"""GNN4IP: the pair model (paper Algorithm 1).

``gnn4ip(p1, p2)`` embeds both designs with hw2vec, computes their cosine
similarity Y_hat in [-1, 1], and compares it to the decision boundary delta:
Y_hat > delta -> piracy (label 1), else no piracy (label 0).
"""

import numpy as np

from repro.core.hw2vec import HW2VEC, PreparedGraph
from repro.errors import ModelError
from repro.nn.tensor import cosine_similarity, Tensor


def cosine_similarity_np(a, b, eps=1e-12):
    """Cosine similarity of two numpy vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = (np.linalg.norm(a) + eps) * (np.linalg.norm(b) + eps)
    return float(a @ b / denom)


class GNN4IP:
    """IP-piracy detector: hw2vec encoder + cosine threshold.

    Args:
        encoder: a (possibly trained) :class:`HW2VEC`; a fresh one is built
            from ``encoder_kwargs`` when omitted.
        delta: decision boundary on the similarity score.  The paper tunes
            delta for maximum accuracy; :meth:`tune_delta` does the same.
    """

    def __init__(self, encoder=None, delta=0.5, **encoder_kwargs):
        self.encoder = encoder if encoder is not None else HW2VEC(**encoder_kwargs)
        self.delta = float(delta)

    # -- inference -----------------------------------------------------------
    def similarity(self, graph_a, graph_b):
        """Similarity score Y_hat in [-1, 1] for two DFGs."""
        h_a = self.encoder.embed(graph_a)
        h_b = self.encoder.embed(graph_b)
        return cosine_similarity_np(h_a, h_b)

    def predict(self, graph_a, graph_b):
        """Binary piracy verdict per Algorithm 1 (1 = piracy)."""
        return int(self.similarity(graph_a, graph_b) > self.delta)

    def similarity_from_embeddings(self, h_a, h_b):
        """Score from precomputed embeddings."""
        return cosine_similarity_np(h_a, h_b)

    def predict_from_embeddings(self, h_a, h_b):
        return int(cosine_similarity_np(h_a, h_b) > self.delta)

    # -- threshold tuning ------------------------------------------------
    def tune_delta(self, similarities, labels):
        """Pick delta maximizing accuracy on (similarity, label) data.

        Args:
            similarities: iterable of float scores.
            labels: iterable of {0, 1} piracy labels.

        Returns:
            (best_delta, best_accuracy)
        """
        scores = np.asarray(list(similarities), dtype=np.float64)
        truth = np.asarray(list(labels), dtype=np.int64)
        if scores.size == 0:
            raise ModelError("cannot tune delta without scores")
        if set(np.unique(truth)) - {0, 1}:
            raise ModelError("labels must be 0/1")
        # Candidate thresholds are the midpoints between adjacent scores:
        # any value strictly between two neighbours classifies identically
        # on this data, and the midpoint generalizes best to unseen pairs.
        unique = np.unique(scores)
        midpoints = (unique[:-1] + unique[1:]) / 2.0
        candidates = np.concatenate([[-1.0, 1.0], midpoints])
        best_delta, best_accuracy = self.delta, -1.0
        for candidate in candidates:
            predictions = (scores > candidate).astype(np.int64)
            accuracy = float((predictions == truth).mean())
            if accuracy > best_accuracy:
                best_accuracy = accuracy
                best_delta = float(candidate)
        self.delta = best_delta
        return best_delta, best_accuracy

    # -- training-time helper ------------------------------------------------
    def training_similarity(self, prepared_a, prepared_b):
        """Differentiable similarity for two prepared graphs."""
        if not isinstance(prepared_a, PreparedGraph):
            prepared_a = self.encoder.prepare(prepared_a)
        if not isinstance(prepared_b, PreparedGraph):
            prepared_b = self.encoder.prepare(prepared_b)
        h_a = self.encoder(prepared_a)
        h_b = self.encoder(prepared_b)
        return cosine_similarity(h_a, h_b)
