"""GNN4IP core: featurization, hw2vec encoder, pair model, training."""

from repro.core.dataset import (
    GraphRecord,
    PairDataset,
    batches,
    build_pair_dataset,
    make_pairs,
    split_pairs,
)
from repro.core.features import (
    FEATURE_DIM,
    FEATURIZERS,
    LABEL_INDEX,
    NETLIST_FEATURIZER,
    RTL_FEATURIZER,
    VOCABULARY,
    OneHotFeaturizer,
    get_featurizer,
    label_index,
    one_hot_features,
)
from repro.core.gnn4ip import GNN4IP, cosine_similarity_np
from repro.core.hw2vec import HW2VEC, PreparedGraph
from repro.core.matcher import IPMatcher, Match
from repro.core.metrics import ConfusionMatrix, confusion_from_scores
from repro.core.persist import load_model, save_model
from repro.core.trainer import Trainer, train_model

__all__ = [
    "GraphRecord", "PairDataset", "batches", "build_pair_dataset",
    "make_pairs", "split_pairs",
    "FEATURE_DIM", "FEATURIZERS", "LABEL_INDEX", "NETLIST_FEATURIZER",
    "RTL_FEATURIZER", "VOCABULARY", "OneHotFeaturizer", "get_featurizer",
    "label_index", "one_hot_features",
    "GNN4IP", "cosine_similarity_np",
    "HW2VEC", "PreparedGraph",
    "IPMatcher", "Match",
    "ConfusionMatrix", "confusion_from_scores",
    "load_model", "save_model",
    "Trainer", "train_model",
]
