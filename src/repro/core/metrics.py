"""Classification metrics: confusion matrix, accuracy, FNR (paper §IV-B/F)."""

from dataclasses import dataclass

import numpy as np


@dataclass
class ConfusionMatrix:
    """Binary confusion counts, positive = piracy."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    @property
    def total(self):
        return self.tp + self.fp + self.fn + self.tn

    @property
    def accuracy(self):
        """Correctly labeled ratio (TP + TN) / all — the paper's metric."""
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def false_negative_rate(self):
        """FN / (FN + TP) — compared against watermark P_c in §IV-F."""
        positives = self.fn + self.tp
        return self.fn / positives if positives else 0.0

    @property
    def false_positive_rate(self):
        negatives = self.fp + self.tn
        return self.fp / negatives if negatives else 0.0

    @property
    def precision(self):
        predicted = self.tp + self.fp
        return self.tp / predicted if predicted else 0.0

    @property
    def recall(self):
        positives = self.tp + self.fn
        return self.tp / positives if positives else 0.0

    @property
    def f1(self):
        """Harmonic mean of precision and recall."""
        denominator = self.precision + self.recall
        if not denominator:
            return 0.0
        return 2.0 * self.precision * self.recall / denominator

    def as_dict(self):
        """JSON-ready counts + derived rates (the eval report's shape)."""
        return {
            "tp": self.tp, "fp": self.fp, "fn": self.fn, "tn": self.tn,
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "false_negative_rate": self.false_negative_rate,
            "false_positive_rate": self.false_positive_rate,
        }

    def as_text(self):
        """Render in the layout of Fig. 4(a)."""
        return (f"            Actual +   Actual -\n"
                f"Pred +   TP: {self.tp:6d}  FP: {self.fp:6d}\n"
                f"Pred -   FN: {self.fn:6d}  TN: {self.tn:6d}")


def roc_auc(scores, labels):
    """Area under the ROC curve by the rank statistic (Mann-Whitney U).

    Ties between scores contribute half, so thresholded integer-ish
    scores still give the exact AUC.  Returns ``None`` when either class
    is empty (AUC is undefined there, and the evaluation report must not
    silently coerce that to 0.5 or 0.0).
    """
    scores = np.asarray(list(scores), dtype=np.float64)
    truth = (np.asarray(list(labels)) > 0)
    positives = int(truth.sum())
    negatives = int(truth.size - positives)
    if not positives or not negatives:
        return None
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=np.float64)
    ranks[order] = np.arange(1, scores.size + 1)
    # Average the ranks of tied scores (midrank method).
    sorted_scores = scores[order]
    index = 0
    while index < scores.size:
        end = index
        while (end + 1 < scores.size
               and sorted_scores[end + 1] == sorted_scores[index]):
            end += 1
        if end > index:
            ranks[order[index:end + 1]] = (index + end) / 2.0 + 1.0
        index = end + 1
    rank_sum = float(ranks[truth].sum())
    u_statistic = rank_sum - positives * (positives + 1) / 2.0
    return u_statistic / (positives * negatives)


def confusion_from_scores(similarities, labels, delta):
    """Build a confusion matrix by thresholding similarity scores.

    Args:
        similarities: float scores in [-1, 1].
        labels: ground-truth {0, 1} (or {-1, +1}) piracy labels.
        delta: decision boundary.
    """
    matrix = ConfusionMatrix()
    scores = np.asarray(list(similarities), dtype=np.float64)
    truth = np.asarray(list(labels))
    truth = (truth > 0).astype(np.int64)
    predictions = (scores > delta).astype(np.int64)
    matrix.tp = int(np.sum((predictions == 1) & (truth == 1)))
    matrix.fp = int(np.sum((predictions == 1) & (truth == 0)))
    matrix.fn = int(np.sum((predictions == 0) & (truth == 1)))
    matrix.tn = int(np.sum((predictions == 0) & (truth == 0)))
    return matrix
