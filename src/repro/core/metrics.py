"""Classification metrics: confusion matrix, accuracy, FNR (paper §IV-B/F)."""

from dataclasses import dataclass

import numpy as np


@dataclass
class ConfusionMatrix:
    """Binary confusion counts, positive = piracy."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    @property
    def total(self):
        return self.tp + self.fp + self.fn + self.tn

    @property
    def accuracy(self):
        """Correctly labeled ratio (TP + TN) / all — the paper's metric."""
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def false_negative_rate(self):
        """FN / (FN + TP) — compared against watermark P_c in §IV-F."""
        positives = self.fn + self.tp
        return self.fn / positives if positives else 0.0

    @property
    def false_positive_rate(self):
        negatives = self.fp + self.tn
        return self.fp / negatives if negatives else 0.0

    @property
    def precision(self):
        predicted = self.tp + self.fp
        return self.tp / predicted if predicted else 0.0

    @property
    def recall(self):
        positives = self.tp + self.fn
        return self.tp / positives if positives else 0.0

    def as_text(self):
        """Render in the layout of Fig. 4(a)."""
        return (f"            Actual +   Actual -\n"
                f"Pred +   TP: {self.tp:6d}  FP: {self.fp:6d}\n"
                f"Pred -   FN: {self.fn:6d}  TN: {self.tn:6d}")


def confusion_from_scores(similarities, labels, delta):
    """Build a confusion matrix by thresholding similarity scores.

    Args:
        similarities: float scores in [-1, 1].
        labels: ground-truth {0, 1} (or {-1, +1}) piracy labels.
        delta: decision boundary.
    """
    matrix = ConfusionMatrix()
    scores = np.asarray(list(similarities), dtype=np.float64)
    truth = np.asarray(list(labels))
    truth = (truth > 0).astype(np.int64)
    predictions = (scores > delta).astype(np.int64)
    matrix.tp = int(np.sum((predictions == 1) & (truth == 1)))
    matrix.fp = int(np.sum((predictions == 1) & (truth == 0)))
    matrix.fn = int(np.sum((predictions == 0) & (truth == 1)))
    matrix.tn = int(np.sum((predictions == 0) & (truth == 0)))
    return matrix
