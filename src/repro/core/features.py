"""Node featurization: label vocabulary and one-hot encodings.

The paper initializes each node embedding "by directly converting the node's
name to its corresponding one-hot vector" (§III-C).  Like hw2vec, the name is
first normalized to a type label (operator kind, signal role, or ``const``);
the vocabulary below enumerates every label the dataflow analyzer can emit.
"""

import numpy as np

from repro.dataflow.analyzer import (
    BINARY_OP_LABELS,
    GATE_LABELS,
    UNARY_OP_LABELS,
)

#: Labels the analyzer can attach to op nodes beyond plain operators.
_STRUCTURAL_LABELS = (
    "branch", "concat", "repeat", "pointer", "partselect", "partassign",
    "func", "dff", "posedge", "negedge", "nand", "nor", "buf",
)
_SIGNAL_LABELS = ("input", "output", "wire", "reg")
_CONST_LABELS = ("const",)


def _build_vocabulary():
    labels = []
    seen = set()
    for label in (
            list(BINARY_OP_LABELS.values())
            + list(UNARY_OP_LABELS.values())
            + list(GATE_LABELS.values())
            + list(_STRUCTURAL_LABELS)
            + list(_SIGNAL_LABELS)
            + list(_CONST_LABELS)):
        if label not in seen:
            seen.add(label)
            labels.append(label)
    return tuple(labels)


#: The fixed, ordered node-label vocabulary.
VOCABULARY = _build_vocabulary()

#: label -> index map.
LABEL_INDEX = {label: i for i, label in enumerate(VOCABULARY)}

#: Dimensionality of the one-hot node features.
FEATURE_DIM = len(VOCABULARY)


def label_index(label):
    """Index of ``label`` in the vocabulary (KeyError if unknown)."""
    return LABEL_INDEX[label]


def one_hot_features(graph):
    """(N, FEATURE_DIM) one-hot feature matrix for a DFG.

    Raises:
        KeyError: if the graph contains a label outside the vocabulary,
            which would indicate an analyzer/vocabulary mismatch.
    """
    features = np.zeros((len(graph), FEATURE_DIM))
    for node in graph.nodes:
        features[node.node_id, LABEL_INDEX[node.label]] = 1.0
    return features
