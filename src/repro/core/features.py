"""Node featurization: per-frontend label vocabularies and one-hot encodings.

The paper initializes each node embedding "by directly converting the node's
name to its corresponding one-hot vector" (§III-C).  Like hw2vec, the name is
first normalized to a type label; each extraction frontend has its own fixed
vocabulary:

- **rtl** — every label the dataflow analyzer can emit (operators, signal
  roles, constants), preserved verbatim from the original DFG-only path.
- **netlist** — the gate cell library (``and`` ... ``mux``, ``dff``) plus
  port roles and constants, matching :mod:`repro.netlist.to_ir`.

Featurizers implement the :class:`repro.ir.Featurizer` protocol: they carry
their level, reject graphs from the wrong frontend with
:class:`~repro.errors.ModelError`, and expose a stable schema
:meth:`~OneHotFeaturizer.fingerprint` that cache keys and index metadata
fold in, so a vocabulary change invalidates stale cached artifacts instead
of silently reusing them.
"""

import hashlib

import numpy as np

from repro.dataflow.analyzer import (
    BINARY_OP_LABELS,
    GATE_LABELS,
    UNARY_OP_LABELS,
)
from repro.errors import ModelError
from repro.ir.graphir import LEVEL_NETLIST, LEVEL_RTL
from repro.netlist.cells import CELLS, DFF

#: Bump when the meaning of existing labels changes (not needed for pure
#: vocabulary additions, which already change the fingerprint).
SCHEMA_VERSION = 1

#: Labels the analyzer can attach to op nodes beyond plain operators.
_STRUCTURAL_LABELS = (
    "branch", "concat", "repeat", "pointer", "partselect", "partassign",
    "func", "dff", "posedge", "negedge", "nand", "nor", "buf",
)
_SIGNAL_LABELS = ("input", "output", "wire", "reg")
_CONST_LABELS = ("const",)


def _build_vocabulary():
    labels = []
    seen = set()
    for label in (
            list(BINARY_OP_LABELS.values())
            + list(UNARY_OP_LABELS.values())
            + list(GATE_LABELS.values())
            + list(_STRUCTURAL_LABELS)
            + list(_SIGNAL_LABELS)
            + list(_CONST_LABELS)):
        if label not in seen:
            seen.add(label)
            labels.append(label)
    return tuple(labels)


class OneHotFeaturizer:
    """Vocabulary-driven one-hot featurizer for one graph level.

    Implements the :class:`repro.ir.Featurizer` protocol.

    Args:
        name: registry name (also what model configs persist).
        level: the ``GraphIR.level`` this featurizer accepts.
        vocabulary: ordered label tuple; order defines feature columns.
    """

    __slots__ = ("name", "level", "vocabulary", "label_index", "dim")

    def __init__(self, name, level, vocabulary):
        self.name = name
        self.level = level
        self.vocabulary = tuple(vocabulary)
        self.label_index = {label: i
                            for i, label in enumerate(self.vocabulary)}
        self.dim = len(self.vocabulary)

    def fingerprint(self):
        """Stable hex digest of the feature schema.

        Covers the schema version, name, level, and the exact vocabulary
        order — anything that changes the meaning of a feature column.
        """
        digest = hashlib.sha256()
        digest.update(f"feat-v{SCHEMA_VERSION}:{self.name}:{self.level}\0"
                      .encode("utf-8"))
        digest.update("\0".join(self.vocabulary).encode("utf-8"))
        return digest.hexdigest()[:16]

    def check(self, graph):
        """Raise :class:`ModelError` when ``graph`` is from another level."""
        level = getattr(graph, "level", self.level)
        if level != self.level:
            raise ModelError(
                f"featurizer {self.name!r} expects {self.level} graphs, "
                f"got a {level} graph ({graph.name!r}); extract at "
                f"--level {self.level} or load a {level} model")

    def features(self, graph):
        """(N, dim) one-hot feature matrix for a GraphIR/DFG.

        Raises:
            ModelError: when the graph comes from a different level.
            KeyError: if the graph contains a label outside the vocabulary,
                which would indicate a frontend/vocabulary mismatch.
        """
        self.check(graph)
        features = np.zeros((len(graph), self.dim))
        for node in graph.nodes:
            features[node.node_id, self.label_index[node.label]] = 1.0
        return features

    def __repr__(self):
        return (f"OneHotFeaturizer({self.name!r}, level={self.level!r}, "
                f"dim={self.dim})")


def _netlist_vocabulary():
    return tuple(sorted(CELLS)) + (DFF,) + ("input", "output", "const")


#: The RTL featurizer's fixed, ordered node-label vocabulary.
VOCABULARY = _build_vocabulary()

RTL_FEATURIZER = OneHotFeaturizer("rtl", LEVEL_RTL, VOCABULARY)
NETLIST_FEATURIZER = OneHotFeaturizer("netlist", LEVEL_NETLIST,
                                      _netlist_vocabulary())

#: label -> index map (RTL); aliases the featurizer's so they cannot drift.
LABEL_INDEX = RTL_FEATURIZER.label_index

#: Dimensionality of the RTL one-hot node features.
FEATURE_DIM = RTL_FEATURIZER.dim

#: Featurizer registry, keyed by the name persisted in model configs.
FEATURIZERS = {f.name: f for f in (RTL_FEATURIZER, NETLIST_FEATURIZER)}


def get_featurizer(featurizer):
    """Resolve a featurizer by registry name (or pass one through).

    Raises:
        ModelError: for an unknown registry name.
    """
    if isinstance(featurizer, str):
        try:
            return FEATURIZERS[featurizer]
        except KeyError:
            raise ModelError(
                f"unknown featurizer {featurizer!r} "
                f"(known: {sorted(FEATURIZERS)})") from None
    return featurizer


def label_index(label):
    """Index of ``label`` in the RTL vocabulary (KeyError if unknown)."""
    return LABEL_INDEX[label]


def one_hot_features(graph):
    """(N, FEATURE_DIM) one-hot feature matrix for an RTL DFG.

    Kept as the RTL fast path for existing callers; equivalent to
    ``RTL_FEATURIZER.features(graph)``.
    """
    return RTL_FEATURIZER.features(graph)
