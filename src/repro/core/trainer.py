"""Training loop for GNN4IP (paper §IV: batch GD, batch 64, lr 0.001).

The trainer uses an *embed-once, pair-many* strategy: within a minibatch of
pairs, every distinct graph is embedded exactly once and the pair losses are
computed on the shared embedding tensors.  Because autograd accumulates
gradients through shared subgraphs, this is mathematically identical to
embedding each pair separately, but far cheaper — a graph appearing in k
pairs is propagated once instead of k times.
"""

import time

import numpy as np

from repro.core.dataset import batches
from repro.core.gnn4ip import GNN4IP, cosine_similarity_np
from repro.core.metrics import confusion_from_scores
from repro.errors import ModelError
from repro.nn.loss import cosine_embedding_loss
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


class Trainer:
    """Fits a :class:`GNN4IP` model on a :class:`PairDataset`.

    Args:
        model: the pair model to train (its encoder holds the weights).
        lr: learning rate (paper: 0.001).
        batch_size: pairs per gradient step (paper: 64).
        margin: cosine-embedding-loss margin (paper: 0.5).
        optimizer: ``adam`` or ``sgd`` (the paper's batch gradient descent).
        seed: shuffling seed.
    """

    def __init__(self, model=None, lr=1e-3, batch_size=64, margin=0.5,
                 optimizer="adam", seed=0, positive_weight=None):
        self.model = model if model is not None else GNN4IP()
        self.batch_size = batch_size
        self.margin = margin
        self.seed = seed
        #: Loss weight for similar pairs.  ``None`` = auto-balance: the
        #: pair universe is heavily skewed toward dissimilar pairs (all
        #: cross-design combinations), and with the paper's plain accuracy
        #: objective an unweighted loss lets the negatives dominate.  The
        #: weight is computed from the dataset on first use.
        self.positive_weight = positive_weight
        params = self.model.encoder.parameters()
        if optimizer == "adam":
            self.optimizer = Adam(params, lr=lr)
        elif optimizer == "sgd":
            self.optimizer = SGD(params, lr=lr)
        else:
            raise ModelError(f"unknown optimizer {optimizer!r}")
        self._prepared = None

    # ------------------------------------------------------------------
    def _prepare_all(self, dataset):
        if self._prepared is None or len(self._prepared) != len(dataset.records):
            encoder = self.model.encoder
            self._prepared = [encoder.prepare(r.graph) for r in dataset.records]
        return self._prepared

    def _embed_indices(self, indices, training):
        """Embed the graphs at ``indices``; returns {index: Tensor}."""
        encoder = self.model.encoder
        encoder.train() if training else encoder.eval()
        return {index: encoder(self._prepared[index]) for index in indices}

    # ------------------------------------------------------------------
    def _balance_weight(self, dataset):
        if self.positive_weight is not None:
            return self.positive_weight
        positives = sum(1 for _, _, label in dataset.train_pairs
                        if label == 1)
        negatives = len(dataset.train_pairs) - positives
        if positives == 0:
            return 1.0
        # Cap the weight so a near-empty positive class cannot explode it.
        return min(negatives / positives, 32.0)

    def train_epoch(self, dataset, epoch=0):
        """One pass over the train pairs; returns (mean_loss, seconds)."""
        prepared = self._prepare_all(dataset)
        del prepared  # cached on self; the handle is not needed here
        weight = self._balance_weight(dataset)
        total_loss = 0.0
        num_pairs = 0
        start = time.perf_counter()
        for batch in batches(dataset.train_pairs, self.batch_size,
                             seed=self.seed + epoch):
            unique = sorted({i for i, _, _ in batch} | {j for _, j, _ in batch})
            embeddings = self._embed_indices(unique, training=True)
            loss = Tensor(0.0)
            for i, j, label in batch:
                pair_loss, _ = cosine_embedding_loss(
                    embeddings[i], embeddings[j], label, self.margin)
                if label == 1 and weight != 1.0:
                    pair_loss = pair_loss * weight
                loss = loss + pair_loss
            loss = loss * (1.0 / len(batch))
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            total_loss += loss.item() * len(batch)
            num_pairs += len(batch)
        elapsed = time.perf_counter() - start
        return total_loss / max(num_pairs, 1), elapsed

    def evaluate_pairs(self, dataset, pairs):
        """Similarities + labels for ``pairs`` using eval-mode embeddings.

        Returns:
            (similarities, labels01, seconds) — labels converted to {0, 1}.
        """
        self._prepare_all(dataset)
        unique = sorted({i for i, _, _ in pairs} | {j for _, j, _ in pairs})
        start = time.perf_counter()
        embeddings = self._embed_indices(unique, training=False)
        vectors = {i: t.numpy() for i, t in embeddings.items()}
        similarities = [cosine_similarity_np(vectors[i], vectors[j])
                        for i, j, _ in pairs]
        elapsed = time.perf_counter() - start
        labels = [1 if label == 1 else 0 for _, _, label in pairs]
        return similarities, labels, elapsed

    def fit(self, dataset, epochs=50, tune_delta=True, verbose=False,
            log_every=10):
        """Train and then calibrate delta on the train split.

        Returns:
            history dict with per-epoch losses and final train accuracy.
        """
        losses = []
        train_seconds = 0.0
        for epoch in range(epochs):
            loss, elapsed = self.train_epoch(dataset, epoch)
            losses.append(loss)
            train_seconds += elapsed
            if verbose and (epoch % log_every == 0 or epoch == epochs - 1):
                print(f"epoch {epoch:4d}  loss {loss:.4f}")
        history = {"losses": losses, "train_seconds": train_seconds,
                   "epochs": epochs}
        if tune_delta:
            similarities, labels, _ = self.evaluate_pairs(
                dataset, dataset.train_pairs)
            delta, accuracy = self.model.tune_delta(similarities, labels)
            history["delta"] = delta
            history["train_accuracy"] = accuracy
        return history

    def test(self, dataset):
        """Evaluate on the held-out pairs.

        Returns:
            dict with the confusion matrix, accuracy, FNR, and timing.
        """
        similarities, labels, elapsed = self.evaluate_pairs(
            dataset, dataset.test_pairs)
        matrix = confusion_from_scores(similarities, labels, self.model.delta)
        return {
            "confusion": matrix,
            "accuracy": matrix.accuracy,
            "false_negative_rate": matrix.false_negative_rate,
            "test_seconds": elapsed,
            "seconds_per_pair": elapsed / max(len(labels), 1),
            "similarities": similarities,
            "labels": labels,
        }


def train_model(dataset, epochs=50, seed=0, verbose=False, **model_kwargs):
    """Convenience: build, train, and delta-tune a GNN4IP model.

    Returns:
        (model, trainer, history)
    """
    model = GNN4IP(seed=seed, **model_kwargs)
    trainer = Trainer(model, seed=seed)
    history = trainer.fit(dataset, epochs=epochs, verbose=verbose)
    return model, trainer, history
