"""Training loop for GNN4IP (paper §IV: batch GD, batch 64, lr 0.001).

The trainer uses an *embed-once, pair-many* strategy: within a minibatch of
pairs, every distinct graph is embedded exactly once and the pair losses
are computed on the shared embedding tensors.  Because autograd accumulates
gradients through shared subgraphs, this is mathematically identical to
embedding each pair separately, but far cheaper — a graph appearing in k
pairs is propagated once instead of k times.

On top of that, the default ``batched`` mode packs each minibatch's unique
graphs into one block-diagonal system (:mod:`repro.nn.batch`) and runs
forward *and* backward as a handful of large sparse/dense products instead
of a Python loop of per-graph passes; the pair losses are likewise one
vectorized cosine computation.  Gradients match the per-graph ``loop``
mode (kept for comparison and benchmarking) to summation-order rounding.
"""

import time

import numpy as np

from repro.core.dataset import batches
from repro.core.gnn4ip import GNN4IP, cosine_similarity_np
from repro.core.metrics import confusion_from_scores
from repro.errors import ModelError
from repro.nn.batch import (
    batched_embed,
    batched_forward_tensor,
    batched_pair_loss,
    pack_prepared,
)
from repro.nn.loss import cosine_embedding_loss
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


class Trainer:
    """Fits a :class:`GNN4IP` model on a :class:`PairDataset`.

    Args:
        model: the pair model to train (its encoder holds the weights).
        lr: learning rate (paper: 0.001).
        batch_size: pairs per gradient step (paper: 64).
        margin: cosine-embedding-loss margin (paper: 0.5).
        optimizer: ``adam`` or ``sgd`` (the paper's batch gradient descent).
        seed: shuffling seed.
        mode: ``batched`` (block-diagonal forward/backward, default) or
            ``loop`` (one autograd pass per graph; the pre-batching path,
            kept as the reference for equivalence tests and benchmarks).
    """

    def __init__(self, model=None, lr=1e-3, batch_size=64, margin=0.5,
                 optimizer="adam", seed=0, positive_weight=None,
                 mode="batched"):
        self.model = model if model is not None else GNN4IP()
        self.batch_size = batch_size
        self.margin = margin
        self.seed = seed
        if mode not in ("batched", "loop"):
            raise ModelError(f"unknown trainer mode {mode!r}")
        self.mode = mode
        #: Loss weight for similar pairs.  ``None`` = auto-balance: the
        #: pair universe is heavily skewed toward dissimilar pairs (all
        #: cross-design combinations), and with the paper's plain accuracy
        #: objective an unweighted loss lets the negatives dominate.  The
        #: weight is computed from the dataset on first use.
        self.positive_weight = positive_weight
        params = self.model.encoder.parameters()
        if optimizer == "adam":
            self.optimizer = Adam(params, lr=lr)
        elif optimizer == "sgd":
            self.optimizer = SGD(params, lr=lr)
        else:
            raise ModelError(f"unknown optimizer {optimizer!r}")
        self._prepared = None

    # ------------------------------------------------------------------
    def _prepare_all(self, dataset):
        if self._prepared is None or len(self._prepared) != len(dataset.records):
            encoder = self.model.encoder
            self._prepared = [encoder.prepare(r.graph) for r in dataset.records]
        return self._prepared

    def _embed_indices(self, indices, training):
        """Embed the graphs at ``indices`` per-graph; returns {index: Tensor}."""
        encoder = self.model.encoder
        encoder.train() if training else encoder.eval()
        return {index: encoder(self._prepared[index]) for index in indices}

    # ------------------------------------------------------------------
    def _balance_weight(self, dataset):
        if self.positive_weight is not None:
            return self.positive_weight
        positives = sum(1 for _, _, label in dataset.train_pairs
                        if label == 1)
        negatives = len(dataset.train_pairs) - positives
        if positives == 0:
            return 1.0
        # Cap the weight so a near-empty positive class cannot explode it.
        return min(negatives / positives, 32.0)

    def _step_batched(self, batch, weight):
        """One gradient step through the block-diagonal batched path."""
        encoder = self.model.encoder
        encoder.train()
        unique = sorted({i for i, _, _ in batch} | {j for _, j, _ in batch})
        row = {graph: r for r, graph in enumerate(unique)}
        packed = pack_prepared([self._prepared[g] for g in unique])
        embeddings = batched_forward_tensor(encoder, packed)
        loss, _ = batched_pair_loss(
            embeddings, [(row[i], row[j], label) for i, j, label in batch],
            self.margin, positive_weight=weight)
        return loss

    def _step_loop(self, batch, weight):
        """One gradient step through the per-graph reference path."""
        unique = sorted({i for i, _, _ in batch} | {j for _, j, _ in batch})
        embeddings = self._embed_indices(unique, training=True)
        loss = Tensor(0.0)
        for i, j, label in batch:
            pair_loss, _ = cosine_embedding_loss(
                embeddings[i], embeddings[j], label, self.margin)
            if label == 1 and weight != 1.0:
                pair_loss = pair_loss * weight
            loss = loss + pair_loss
        return loss * (1.0 / len(batch))

    def train_epoch(self, dataset, epoch=0, extra_pairs=None):
        """One pass over the train pairs; returns (mean_loss, seconds).

        ``extra_pairs`` (e.g. mined hard negatives from
        :mod:`repro.calib.negatives`) are appended to the epoch's pair
        stream without mutating the dataset; ``None`` or an empty list
        leaves the epoch bit-identical to the unaugmented run.
        """
        self._prepare_all(dataset)
        weight = self._balance_weight(dataset)
        pairs = dataset.train_pairs
        if extra_pairs:
            pairs = list(pairs) + list(extra_pairs)
        step = self._step_batched if self.mode == "batched" else self._step_loop
        total_loss = 0.0
        num_pairs = 0
        start = time.perf_counter()
        for batch in batches(pairs, self.batch_size,
                             seed=self.seed + epoch):
            loss = step(batch, weight)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            total_loss += loss.item() * len(batch)
            num_pairs += len(batch)
        elapsed = time.perf_counter() - start
        return total_loss / max(num_pairs, 1), elapsed

    def evaluate_pairs(self, dataset, pairs):
        """Similarities + labels for ``pairs`` using eval-mode embeddings.

        Embedding runs through the block-diagonal eval-mode forward pass in
        ``batch_size``-bounded packs, matching per-graph embeds to BLAS
        rounding with memory bounded regardless of evaluation-set size.

        Returns:
            (similarities, labels01, seconds) — labels converted to {0, 1};
            all empty (with ~0 seconds) for an empty pair list.
        """
        self._prepare_all(dataset)
        unique = sorted({i for i, _, _ in pairs} | {j for _, j, _ in pairs})
        start = time.perf_counter()
        matrix = batched_embed(self.model.encoder,
                               [self._prepared[g] for g in unique],
                               batch_size=self.batch_size)
        vectors = {g: matrix[r] for r, g in enumerate(unique)}
        similarities = [cosine_similarity_np(vectors[i], vectors[j])
                        for i, j, _ in pairs]
        elapsed = time.perf_counter() - start
        labels = [1 if label == 1 else 0 for _, _, label in pairs]
        return similarities, labels, elapsed

    def fit(self, dataset, epochs=50, tune_delta=True, verbose=False,
            log_every=10, extra_pairs=None):
        """Train and then calibrate delta on the train split.

        ``extra_pairs`` ride along in every epoch's pair stream (see
        :meth:`train_epoch`); with ``None`` training is bit-identical
        to the unaugmented call.

        Returns:
            history dict with per-epoch losses and final train accuracy.
        """
        losses = []
        train_seconds = 0.0
        for epoch in range(epochs):
            loss, elapsed = self.train_epoch(dataset, epoch,
                                             extra_pairs=extra_pairs)
            losses.append(loss)
            train_seconds += elapsed
            if verbose and (epoch % log_every == 0 or epoch == epochs - 1):
                print(f"epoch {epoch:4d}  loss {loss:.4f}")
        history = {"losses": losses, "train_seconds": train_seconds,
                   "epochs": epochs}
        if tune_delta:
            similarities, labels, _ = self.evaluate_pairs(
                dataset, dataset.train_pairs)
            delta, accuracy = self.model.tune_delta(similarities, labels)
            history["delta"] = delta
            history["train_accuracy"] = accuracy
        return history

    def test(self, dataset):
        """Evaluate on the held-out pairs.

        Returns:
            dict with the confusion matrix, accuracy, FNR, and timing.
        """
        similarities, labels, elapsed = self.evaluate_pairs(
            dataset, dataset.test_pairs)
        matrix = confusion_from_scores(similarities, labels, self.model.delta)
        return {
            "confusion": matrix,
            "accuracy": matrix.accuracy,
            "false_negative_rate": matrix.false_negative_rate,
            "test_seconds": elapsed,
            "seconds_per_pair": elapsed / max(len(labels), 1),
            "similarities": similarities,
            "labels": labels,
        }


def train_model(dataset, epochs=50, seed=0, verbose=False, **model_kwargs):
    """Convenience: build, train, and delta-tune a GNN4IP model.

    Returns:
        (model, trainer, history)
    """
    model = GNN4IP(seed=seed, **model_kwargs)
    trainer = Trainer(model, seed=seed)
    history = trainer.fit(dataset, epochs=epochs, verbose=verbose)
    return model, trainer, history
