"""Model persistence: save/load GNN4IP models as ``.npz`` archives.

The archive holds the encoder state dict plus two reserved keys:
``__delta__`` (the decision boundary) and ``__config__`` (the encoder's
constructor arguments as JSON), so a saved model can be rebuilt with the
right architecture without the caller repeating the kwargs.  Loading a
missing or foreign file raises :class:`~repro.errors.ModelError` with a
diagnosis instead of a raw ``KeyError``.
"""

import json

import numpy as np

from repro.core.gnn4ip import GNN4IP
from repro.errors import ModelError

_DELTA_KEY = "__delta__"
_CONFIG_KEY = "__config__"


def save_model(model, path):
    """Persist encoder weights, config, and the decision boundary."""
    state = model.encoder.state_dict()
    state[_DELTA_KEY] = np.array(model.delta)
    config = getattr(model.encoder, "config", None)
    if config is not None:
        state[_CONFIG_KEY] = np.array(json.dumps(config, sort_keys=True))
    np.savez(path, **state)


def load_model(path, **encoder_kwargs):
    """Load a model saved by :func:`save_model`.

    Args:
        path: the ``.npz`` archive.
        encoder_kwargs: overrides for the stored encoder config (rarely
            needed; weight shapes must still match).

    Raises:
        ModelError: when the file is missing, is not a gnn4ip model
            archive, or its weights do not fit the encoder.
    """
    try:
        data = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise ModelError(f"model file not found: {path}") from None
    except (OSError, ValueError) as exc:
        raise ModelError(f"not a readable .npz model file: {path} "
                         f"({exc})") from exc
    with data:
        if _DELTA_KEY not in data.files:
            raise ModelError(
                f"{path} is not a gnn4ip model archive "
                f"(missing the '{_DELTA_KEY}' entry)")
        delta = float(data[_DELTA_KEY])
        kwargs = {}
        if _CONFIG_KEY in data.files:
            kwargs.update(json.loads(str(data[_CONFIG_KEY])))
        kwargs.update(encoder_kwargs)
        model = GNN4IP(delta=delta, **kwargs)
        state = {key: data[key] for key in data.files
                 if key not in (_DELTA_KEY, _CONFIG_KEY)}
    try:
        model.encoder.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise ModelError(f"{path} does not contain a compatible "
                         f"model state: {exc}") from exc
    return model
