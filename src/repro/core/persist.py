"""Model persistence: save/load GNN4IP models as ``.npz`` archives.

The archive holds the encoder state dict plus two reserved keys:
``__delta__`` (the decision boundary) and ``__config__`` (the encoder's
constructor arguments as JSON), so a saved model can be rebuilt with the
right architecture without the caller repeating the kwargs.  The config
includes the encoder's **featurizer** name, so the extraction frontend the
model was trained for round-trips too: a reloaded netlist model refuses
RTL graphs (``ModelError``) instead of scoring them against the wrong
vocabulary.  Archives from before the featurizer field default to ``rtl``.
Loading a missing or foreign file raises
:class:`~repro.errors.ModelError` with a diagnosis instead of a raw
``KeyError``.
"""

import json

import numpy as np

from repro.core.gnn4ip import GNN4IP
from repro.errors import ModelError

_DELTA_KEY = "__delta__"
_CONFIG_KEY = "__config__"
_SCHEMA_KEY = "__featurizer_schema__"


def save_model(model, path):
    """Persist encoder weights, config, and the decision boundary.

    The featurizer's schema fingerprint is stored alongside its name:
    weights are only meaningful under the exact vocabulary column order
    they were trained with, so loading under a drifted vocabulary must
    fail instead of silently binding old weights to new columns.
    """
    state = model.encoder.state_dict()
    state[_DELTA_KEY] = np.array(model.delta)
    config = getattr(model.encoder, "config", None)
    if config is not None:
        state[_CONFIG_KEY] = np.array(json.dumps(config, sort_keys=True))
    featurizer = getattr(model.encoder, "featurizer", None)
    if featurizer is not None:
        state[_SCHEMA_KEY] = np.array(featurizer.fingerprint())
    np.savez(path, **state)


def load_model(path, **encoder_kwargs):
    """Load a model saved by :func:`save_model`.

    Args:
        path: the ``.npz`` archive.
        encoder_kwargs: overrides for the stored encoder config (rarely
            needed; weight shapes must still match).

    Raises:
        ModelError: when the file is missing, is not a gnn4ip model
            archive, or its weights do not fit the encoder.
    """
    try:
        data = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise ModelError(f"model file not found: {path}") from None
    except (OSError, ValueError) as exc:
        raise ModelError(f"not a readable .npz model file: {path} "
                         f"({exc})") from exc
    with data:
        if _DELTA_KEY not in data.files:
            raise ModelError(
                f"{path} is not a gnn4ip model archive "
                f"(missing the '{_DELTA_KEY}' entry)")
        delta = float(data[_DELTA_KEY])
        kwargs = {}
        if _CONFIG_KEY in data.files:
            kwargs.update(json.loads(str(data[_CONFIG_KEY])))
        kwargs.update(encoder_kwargs)
        model = GNN4IP(delta=delta, **kwargs)
        if _SCHEMA_KEY in data.files:
            saved_schema = str(data[_SCHEMA_KEY])
            current = model.encoder.featurizer.fingerprint()
            if saved_schema != current:
                raise ModelError(
                    f"{path} was trained under featurizer schema "
                    f"{saved_schema}, but the current "
                    f"{model.encoder.featurizer.name!r} vocabulary has "
                    f"schema {current}; its weights would bind to the "
                    f"wrong feature columns (retrain the model)")
        state = {key: data[key] for key in data.files
                 if key not in (_DELTA_KEY, _CONFIG_KEY, _SCHEMA_KEY)}
    try:
        model.encoder.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise ModelError(f"{path} does not contain a compatible "
                         f"model state: {exc}") from exc
    return model
