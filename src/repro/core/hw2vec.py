"""hw2vec: the graph-embedding model (paper §III-C, Fig. 3).

Architecture (paper's evaluation settings as defaults): a stack of GCN
layers (2 layers, 16 hidden units), dropout 0.1 after each, a self-attention
graph-pooling layer with ratio 0.5, and a max readout producing the graph
embedding h_G.
"""

import numpy as np

from repro.core.features import FEATURE_DIM, one_hot_features
from repro.nn.layers import Dropout, GCNConv, Module, normalize_adjacency
from repro.nn.pooling import Readout, SAGPool
from repro.nn.tensor import Tensor


class PreparedGraph:
    """A DFG converted to model inputs (features + adjacencies).

    Conversion is deterministic, so prepared graphs can be cached and reused
    across epochs.
    """

    __slots__ = ("name", "features", "adjacency", "a_norm", "num_nodes")

    def __init__(self, graph):
        self.name = graph.name
        self.features = one_hot_features(graph)
        self.adjacency = graph.adjacency(symmetric=True)
        self.a_norm = normalize_adjacency(self.adjacency)
        self.num_nodes = len(graph)


class HW2VEC(Module):
    """Graph encoder: DFG -> fixed-size embedding.

    Args:
        in_features: node feature width (defaults to the label vocabulary).
        hidden: GCN hidden units (paper: 16).
        num_layers: GCN depth (paper: 2).
        pool_ratio: SAGPool keep ratio (paper: 0.5).
        readout: ``max`` / ``mean`` / ``sum`` (paper: max).
        dropout: dropout rate after each GCN layer (paper: 0.1).
        seed: RNG seed for weight init and dropout masks.
    """

    def __init__(self, in_features=FEATURE_DIM, hidden=16, num_layers=2,
                 pool_ratio=0.5, readout="max", dropout=0.1, seed=0):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one GCN layer")
        #: Constructor arguments, recorded so saved models can be rebuilt
        #: with the right architecture and fingerprinted for index reuse.
        self.config = {
            "in_features": in_features, "hidden": hidden,
            "num_layers": num_layers, "pool_ratio": pool_ratio,
            "readout": readout, "dropout": dropout,
        }
        rng = np.random.default_rng(seed)
        self.convs = []
        width = in_features
        for index in range(num_layers):
            conv = GCNConv(width, hidden, rng=rng)
            self.register_module(f"conv{index}", conv)
            self.convs.append(conv)
            width = hidden
        self.dropout = self.register_module("dropout", Dropout(dropout, rng=rng))
        self.pool = self.register_module("pool",
                                         SAGPool(hidden, pool_ratio, rng=rng))
        self.readout = self.register_module("readout", Readout(readout))
        self.hidden = hidden

    def prepare(self, graph):
        """Convert a DFG into cached model inputs."""
        return PreparedGraph(graph)

    def forward(self, prepared):
        """Embed one prepared graph; returns a 1-D Tensor of size hidden."""
        x = Tensor(prepared.features)
        for conv in self.convs:
            x = conv(x, prepared.a_norm).relu()
            x = self.dropout(x)
        x_pool, _, _, _ = self.pool(x, prepared.a_norm, prepared.adjacency)
        return self.readout(x_pool)

    def embed(self, graph):
        """Embed a DFG (prepares it first); returns a numpy vector."""
        was_training = self.training
        self.eval()
        embedding = self.forward(self.prepare(graph)).numpy().copy()
        if was_training:
            self.train()
        return embedding

    def embed_many(self, graphs, batch_size=64):
        """Embed a sequence of DFGs; returns an (n, hidden) array.

        Graphs are packed into block-diagonal batches and embedded in one
        forward pass per batch (:func:`repro.nn.batch.batched_embed`);
        results match per-graph :meth:`embed` calls to BLAS rounding.
        """
        from repro.nn.batch import batched_embed

        return batched_embed(self, graphs, batch_size=batch_size)
