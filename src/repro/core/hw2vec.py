"""hw2vec: the graph-embedding model (paper §III-C, Fig. 3).

Architecture (paper's evaluation settings as defaults): a stack of GCN
layers (2 layers, 16 hidden units), dropout 0.1 after each, a self-attention
graph-pooling layer with ratio 0.5, and a max readout producing the graph
embedding h_G.

The encoder consumes :class:`~repro.ir.graphir.GraphIR` through a pluggable
featurizer (see :mod:`repro.core.features`): RTL DFGs and gate-level
netlist graphs flow through the same layers, differing only in the node
vocabulary their featurizer one-hot encodes.  The featurizer is part of the
model's identity — it is recorded in ``config`` so persistence and the
fingerprint index can refuse graphs from the wrong frontend.
"""

import numpy as np

from repro.core.features import get_featurizer
from repro.ir import to_graphir
from repro.nn.layers import Dropout, GCNConv, Module, normalize_adjacency
from repro.nn.pooling import Readout, SAGPool
from repro.nn.tensor import Tensor


class PreparedGraph:
    """A GraphIR converted to model inputs (features + adjacencies).

    Conversion is deterministic, so prepared graphs can be cached and reused
    across epochs.  Accepts anything :func:`repro.ir.to_graphir` can adapt
    (GraphIR, DFG, gate-level Netlist).
    """

    __slots__ = ("name", "level", "features", "adjacency", "a_norm",
                 "num_nodes")

    def __init__(self, graph, featurizer="rtl"):
        ir = to_graphir(graph)
        featurizer = get_featurizer(featurizer)
        self.name = ir.name
        self.level = getattr(ir, "level", featurizer.level)
        self.features = featurizer.features(ir)
        self.adjacency = ir.adjacency(symmetric=True)
        self.a_norm = normalize_adjacency(self.adjacency)
        self.num_nodes = len(ir)


class HW2VEC(Module):
    """Graph encoder: GraphIR -> fixed-size embedding.

    Args:
        in_features: node feature width (defaults to the featurizer's
            vocabulary size).
        hidden: GCN hidden units (paper: 16).
        num_layers: GCN depth (paper: 2).
        pool_ratio: SAGPool keep ratio (paper: 0.5).
        readout: ``max`` / ``mean`` / ``sum`` (paper: max).
        dropout: dropout rate after each GCN layer (paper: 0.1).
        seed: RNG seed for weight init and dropout masks.
        featurizer: registry name (``rtl`` / ``netlist``) or a
            :class:`repro.ir.Featurizer` instance; fixes which graph level
            this encoder accepts.
    """

    def __init__(self, in_features=None, hidden=16, num_layers=2,
                 pool_ratio=0.5, readout="max", dropout=0.1, seed=0,
                 featurizer="rtl"):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one GCN layer")
        self.featurizer = get_featurizer(featurizer)
        if in_features is None:
            in_features = self.featurizer.dim
        #: Constructor arguments, recorded so saved models can be rebuilt
        #: with the right architecture (and featurizer/frontend) and
        #: fingerprinted for index reuse.
        self.config = {
            "in_features": in_features, "hidden": hidden,
            "num_layers": num_layers, "pool_ratio": pool_ratio,
            "readout": readout, "dropout": dropout,
            "featurizer": self.featurizer.name,
        }
        rng = np.random.default_rng(seed)
        self.convs = []
        width = in_features
        for index in range(num_layers):
            conv = GCNConv(width, hidden, rng=rng)
            self.register_module(f"conv{index}", conv)
            self.convs.append(conv)
            width = hidden
        self.dropout = self.register_module("dropout", Dropout(dropout, rng=rng))
        self.pool = self.register_module("pool",
                                         SAGPool(hidden, pool_ratio, rng=rng))
        self.readout = self.register_module("readout", Readout(readout))
        self.hidden = hidden

    def prepare(self, graph):
        """Convert a GraphIR/DFG/Netlist into cached model inputs.

        Raises:
            ModelError: when the graph's level does not match the
                encoder's featurizer (e.g. a netlist graph fed to an
                RTL-trained model).
        """
        return PreparedGraph(graph, self.featurizer)

    def forward(self, prepared):
        """Embed one prepared graph; returns a 1-D Tensor of size hidden."""
        x = Tensor(prepared.features)
        for conv in self.convs:
            x = conv(x, prepared.a_norm).relu()
            x = self.dropout(x)
        x_pool, _, _, _ = self.pool(x, prepared.a_norm, prepared.adjacency)
        return self.readout(x_pool)

    def embed(self, graph):
        """Embed a graph (prepares it first); returns a numpy vector."""
        was_training = self.training
        self.eval()
        embedding = self.forward(self.prepare(graph)).numpy().copy()
        if was_training:
            self.train()
        return embedding

    def embed_many(self, graphs, batch_size=64):
        """Embed a sequence of graphs; returns an (n, hidden) array.

        Graphs are packed into block-diagonal batches and embedded in one
        forward pass per batch (:func:`repro.nn.batch.batched_embed`);
        results match per-graph :meth:`embed` calls to BLAS rounding.
        """
        from repro.nn.batch import batched_embed

        return batched_embed(self, graphs, batch_size=batch_size)
