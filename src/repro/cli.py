"""Command-line interface: ``gnn4ip`` with extract / train / compare.

Examples::

    gnn4ip extract-dfg design.v
    gnn4ip train --families adder8 cmp8 alu --epochs 40 --save model.npz
    gnn4ip compare a.v b.v --model model.npz
    gnn4ip corpus --instances 3
"""

import argparse
import sys

import numpy as np

from repro.core import GNN4IP, Trainer, build_pair_dataset
from repro.dataflow import dfg_from_verilog
from repro.designs import default_rtl_families, family_names, rtl_records


def save_model(model, path):
    """Persist encoder weights and the decision boundary to an .npz file."""
    state = model.encoder.state_dict()
    state["__delta__"] = np.array(model.delta)
    np.savez(path, **state)


def load_model(path, **encoder_kwargs):
    """Load a model saved by :func:`save_model`."""
    data = np.load(path)
    delta = float(data["__delta__"])
    model = GNN4IP(delta=delta, **encoder_kwargs)
    state = {key: data[key] for key in data.files if key != "__delta__"}
    model.encoder.load_state_dict(state)
    return model


def _cmd_extract(args):
    with open(args.file) as handle:
        text = handle.read()
    graph = dfg_from_verilog(text, top=args.top)
    stats = graph.stats()
    print(f"design: {stats['name']}")
    print(f"nodes:  {stats['nodes']}")
    print(f"edges:  {stats['edges']}")
    print(f"roots (outputs): {stats['roots']}")
    print(f"leaves (inputs): {stats['leaves']}")
    if args.labels:
        for label, count in sorted(graph.label_counts().items()):
            print(f"  {label:12s} {count}")
    if args.edges:
        for node in graph.nodes:
            for dep in graph.successors(node.node_id):
                print(f"  {node.node_id} -> {dep}")
    return 0


def _cmd_train(args):
    families = args.families or default_rtl_families()
    print(f"generating corpus: {len(families)} designs x "
          f"{args.instances} instances")
    records = rtl_records(families=families,
                          instances_per_design=args.instances,
                          seed=args.seed)
    dataset = build_pair_dataset(records, seed=args.seed)
    summary = dataset.summary()
    print(f"pairs: {summary['pairs']} "
          f"({summary['similar_pairs']} similar / "
          f"{summary['different_pairs']} different)")
    model = GNN4IP(seed=args.seed)
    trainer = Trainer(model, seed=args.seed)
    trainer.fit(dataset, epochs=args.epochs, verbose=True)
    result = trainer.test(dataset)
    print(f"delta: {model.delta:+.4f}")
    print(f"test accuracy: {result['accuracy']:.4f}")
    print(result["confusion"].as_text())
    if args.save:
        save_model(model, args.save)
        print(f"model saved to {args.save}")
    return 0


def _cmd_compare(args):
    if args.model:
        model = load_model(args.model)
    else:
        model = GNN4IP(seed=args.seed)
        print("warning: comparing with an untrained model", file=sys.stderr)
    if args.delta is not None:
        model.delta = args.delta
    graphs = []
    for path in (args.file_a, args.file_b):
        with open(path) as handle:
            graphs.append(dfg_from_verilog(handle.read()))
    score = model.similarity(graphs[0], graphs[1])
    verdict = "PIRACY" if score > model.delta else "no piracy"
    print(f"similarity: {score:+.4f} (delta {model.delta:+.4f}) -> {verdict}")
    return 0 if score <= model.delta else 2


def _cmd_corpus(args):
    names = family_names()
    print(f"{len(names)} registered design families:")
    from repro.designs import get_family
    for name in names:
        family = get_family(name)
        styles = ", ".join(family.style_names())
        print(f"  {name:16s} {family.description:40s} [{styles}]")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="gnn4ip",
        description="GNN4IP: hardware IP piracy detection (DAC'21 repro)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_extract = sub.add_parser("extract-dfg",
                               help="extract and summarize a DFG")
    p_extract.add_argument("file")
    p_extract.add_argument("--top", default=None, help="top module name")
    p_extract.add_argument("--labels", action="store_true",
                           help="print the label histogram")
    p_extract.add_argument("--edges", action="store_true",
                           help="print the edge list")
    p_extract.set_defaults(func=_cmd_extract)

    p_train = sub.add_parser("train", help="train on the generated corpus")
    p_train.add_argument("--families", nargs="*", default=None)
    p_train.add_argument("--instances", type=int, default=4)
    p_train.add_argument("--epochs", type=int, default=40)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--save", default=None, help="output .npz path")
    p_train.set_defaults(func=_cmd_train)

    p_compare = sub.add_parser("compare",
                               help="piracy check on two Verilog files")
    p_compare.add_argument("file_a")
    p_compare.add_argument("file_b")
    p_compare.add_argument("--model", default=None,
                           help=".npz from 'gnn4ip train --save'")
    p_compare.add_argument("--delta", type=float, default=None)
    p_compare.add_argument("--seed", type=int, default=0)
    p_compare.set_defaults(func=_cmd_compare)

    p_corpus = sub.add_parser("corpus", help="list design families")
    p_corpus.set_defaults(func=_cmd_corpus)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
