"""Command-line interface: ``gnn4ip`` with extract / train / compare /
index / serve.

Every detection subcommand is a thin argparse shim over the public
facade (:mod:`repro.api`): the CLI parses flags, builds
``Detector`` / ``Corpus`` / ``Session`` objects, and formats their typed
results — all wiring (model loading, embedding reuse, caching, batched
queries) lives behind the facade, so library consumers and the HTTP
server share exactly the code paths exercised here.

Detection commands work at two levels: ``rtl`` (the paper's data-flow
graphs) and ``netlist`` (gate-level graphs, synthesized from the input when
it is not already structural).  ``--level`` selects the frontend; models
remember the level they were trained for and refuse the other one.
Running without ``--model`` requires an explicit ``--allow-untrained``
opt-in — an untrained model scores with random weights, which is never a
silent default.

Examples::

    gnn4ip extract-dfg design.v
    gnn4ip train --families adder8 cmp8 alu --epochs 40 --save model.npz
    gnn4ip train --level netlist --epochs 40 --save netmodel.npz
    gnn4ip compare a.v b.v --model model.npz
    gnn4ip compare a.v b.v --model model.npz --json
    gnn4ip compare a.v b.v --level netlist --model netmodel.npz
    gnn4ip corpus --instances 3
    gnn4ip index build my.index --families --instances 4 --model model.npz
    gnn4ip index build net.index --level netlist --families --model net.npz
    gnn4ip index add my.index new_designs/
    gnn4ip index ingest big.index /path/to/verilog/tree --model model.npz
    gnn4ip index ingest big.index more/ --progress --json
    gnn4ip index query my.index suspect.v -k 5
    gnn4ip index query my.index s1.v s2.v s3.v --nprobe 8 --json
    gnn4ip index query my.index suspect.v --exact
    gnn4ip index migrate old.index
    gnn4ip index stats my.index
    gnn4ip compare a.v b.v --index my.index
    gnn4ip serve my.index --port 8000
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro import __version__
from repro.api import Corpus, Detector, IndexConfig, IngestConfig, Session
from repro.index.ingest import CHECKPOINT_NAME, walk_sources
from repro.core import GNN4IP, Trainer, build_pair_dataset
from repro.core.persist import load_model, save_model  # noqa: F401 - re-export
from repro.dataflow import dfg_from_verilog
from repro.designs import (
    default_rtl_families,
    family_names,
    materialize_corpus,
    netlist_ir_records,
    rtl_records,
)
from repro.errors import ReproError


def _cmd_extract(args):
    with open(args.file) as handle:
        text = handle.read()
    graph = dfg_from_verilog(text, top=args.top)
    stats = graph.stats()
    print(f"design: {stats['name']}")
    print(f"nodes:  {stats['nodes']}")
    print(f"edges:  {stats['edges']}")
    print(f"roots (outputs): {stats['roots']}")
    print(f"leaves (inputs): {stats['leaves']}")
    if args.labels:
        for label, count in sorted(graph.label_counts().items()):
            print(f"  {label:12s} {count}")
    if args.edges:
        for node in graph.nodes:
            for dep in graph.successors(node.node_id):
                print(f"  {node.node_id} -> {dep}")
    return 0


def _cmd_train(args):
    if args.level == "netlist":
        families = args.families or None
        print(f"generating netlist corpus (synthesized RTL families) x "
              f"{args.instances} instances")
        records = netlist_ir_records(families=families,
                                     instances_per_design=args.instances,
                                     seed=args.seed)
    else:
        families = args.families or default_rtl_families()
        print(f"generating corpus: {len(families)} designs x "
              f"{args.instances} instances")
        records = rtl_records(families=families,
                              instances_per_design=args.instances,
                              seed=args.seed)
    dataset = build_pair_dataset(records, seed=args.seed)
    summary = dataset.summary()
    print(f"pairs: {summary['pairs']} "
          f"({summary['similar_pairs']} similar / "
          f"{summary['different_pairs']} different)")
    model = GNN4IP(seed=args.seed, featurizer=args.level)
    trainer = Trainer(model, seed=args.seed)
    trainer.fit(dataset, epochs=args.epochs, verbose=True)
    result = trainer.test(dataset)
    print(f"delta: {model.delta:+.4f}")
    print(f"test accuracy: {result['accuracy']:.4f}")
    print(result["confusion"].as_text())
    if args.save:
        save_model(model, args.save)
        print(f"model saved to {args.save}")
    return 0


def _cli_detector(model_path, args, level=None):
    """Detector from ``--model``, or an untrained one behind the explicit
    ``--allow-untrained`` opt-in (the facade itself always refuses).

    Returns ``None`` (after printing the error) when neither is given.
    """
    if model_path:
        return Detector.load(model_path, level=level)
    if not getattr(args, "allow_untrained", False):
        print("error: no --model given (pass --allow-untrained to run "
              "with an untrained model)", file=sys.stderr)
        return None
    print("warning: comparing with an untrained model", file=sys.stderr)
    return Detector.untrained(level=level or "rtl",
                              seed=getattr(args, "seed", 0))


def _apply_delta_override(detector, args):
    """Apply ``--delta`` in one place (compare + serve share it).

    The override moves the *raw-score* boundary only: ``score``,
    ``is_piracy``, and uncalibrated verdicts follow it, while calibrated
    verdicts keep the artifact's fitted operating point — see
    docs/api.md ("Delta overrides vs calibrated verdicts").
    """
    if getattr(args, "delta", None) is not None:
        detector.delta = args.delta


def _cmd_compare(args):
    corpus = Corpus.open(args.index) if args.index else None
    if corpus is not None and args.level and args.level != corpus.level:
        print(f"error: index was built at --level {corpus.level}, "
              f"not {args.level}", file=sys.stderr)
        return 1
    if args.model:
        detector = Detector.load(args.model, level=args.level)
    elif corpus is not None:
        detector = corpus.detector()
    else:
        detector = _cli_detector(None, args, level=args.level)
        if detector is None:
            return 1
    _apply_delta_override(detector, args)

    if corpus is not None:
        session = Session(detector=detector, corpus=corpus)
        comparison = session.compare(Path(args.file_a), Path(args.file_b))
        if comparison.origins:
            for path, origin in zip((args.file_a, args.file_b),
                                    comparison.origins):
                print(f"{path}: embedding from {origin}", file=sys.stderr)
    else:
        comparison = detector.compare(Path(args.file_a), Path(args.file_b))
    if args.json:
        print(json.dumps(comparison.as_dict(), indent=1, sort_keys=True))
    else:
        line = (f"similarity: {comparison.score:+.4f} "
                f"(delta {comparison.delta:+.4f}) -> {comparison.verdict}")
        if comparison.probability is not None:
            line += (f"  p(piracy)={comparison.probability:.3f} "
                     f"[{comparison.confidence_low:.3f}, "
                     f"{comparison.confidence_high:.3f}]")
        print(line)
    return 2 if comparison.flagged else 0


def _cmd_corpus(args):
    names = family_names()
    print(f"{len(names)} registered design families:")
    from repro.designs import get_family
    for name in names:
        family = get_family(name)
        styles = ", ".join(family.style_names())
        print(f"  {name:16s} {family.description:40s} [{styles}]")
    return 0


# -- index subcommands --------------------------------------------------------
def _collect_sources(sources):
    """Expand files/directories into a sorted, deduplicated .v file list."""
    return walk_sources(sources)


class _ProgressPrinter:
    """Periodic stderr progress lines behind ``--progress``."""

    def __init__(self, every=2.0):
        self.every = every
        self.started = time.monotonic()
        self.last = 0.0

    def build(self, done, total):
        """(done, total) callback shape used by the build extractor."""
        now = time.monotonic()
        if now - self.last < self.every and done < total:
            return
        self.last = now
        elapsed = now - self.started
        rate = done / elapsed if elapsed > 0 else 0.0
        eta = f"{(total - done) / rate:.0f}s" if rate > 0 else "?"
        print(f"progress: {done}/{total} designs  {rate:.1f}/s  eta {eta}",
              file=sys.stderr)

    def ingest(self, stats):
        """Stats-dict callback shape used by the streaming ingest (the
        ingest loop already throttles to its own progress_every)."""
        eta = stats["eta_seconds"]
        print(f"progress: {stats['done']}/{stats['total']} designs "
              f"({stats['failed']} failed)  {stats['rows']} rows  "
              f"{stats['rows_per_sec']:.1f} rows/s  "
              f"eta {'?' if eta is None else f'{eta:.0f}s'}",
              file=sys.stderr)


def _cmd_index_build(args):
    paths = _collect_sources(args.sources)
    if args.families is not None:
        families = args.families or default_rtl_families()
        corpus_dir = Path(args.index_dir) / "corpus"
        generated = materialize_corpus(corpus_dir, families=families,
                                       instances_per_design=args.instances,
                                       seed=args.seed)
        print(f"generated {len(generated)} RTL files under {corpus_dir}")
        paths.extend(generated)
    if not paths:
        print("error: no input files (pass sources or --families)",
              file=sys.stderr)
        return 1
    detector = _cli_detector(args.model, args, level=args.level)
    if detector is None:
        return 1
    progress = _ProgressPrinter().build if args.progress else None
    corpus, report = Corpus.build(args.index_dir, paths, detector,
                                  IndexConfig(level=args.level,
                                              jobs=args.jobs,
                                              use_cache=not args.no_cache,
                                              chunks=not args.no_chunks,
                                              progress=progress))
    wall = report["extract_seconds"] + report["embed_seconds"]
    report["throughput"] = {
        "wall_seconds": wall,
        "designs_per_sec": report["embedded"] / max(wall, 1e-9),
        "rows_per_sec": ((report["embedded"] + report["chunk_rows"])
                         / max(wall, 1e-9)),
    }
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        print(f"indexed {report['embedded']}/{report['files']} files "
              f"at level {corpus.level} "
              f"({report['failures']} failures) with "
              f"{report['jobs']} workers")
        if report.get("chunk_rows"):
            print(f"chunks: {report['chunk_rows']} subgraph rows for "
                  f"partial-theft locality")
        if report["embeddings_reused"]:
            print(f"embeddings: {report['embedded_fresh']} fresh, "
                  f"{report['embeddings_reused']} reused from previous "
                  f"build")
        cache = report["cache"]
        if cache is not None:
            print(f"cache: {cache['hits']} hits / {cache['misses']} misses "
                  f"({cache['store_bytes']} bytes written)")
        print(f"extract: {report['extract_seconds']:.3f}s  "
              f"embed: {report['embed_seconds']:.3f}s  "
              f"({report['throughput']['designs_per_sec']:.1f} designs/s)")
    for entry in corpus.entries:
        if entry["status"] == "error":
            print(f"  FAILED {entry['path']}: {entry['error']}",
                  file=sys.stderr)
    return 0


def _cmd_index_ingest(args):
    paths = walk_sources(args.sources)
    if not paths:
        print("error: no input files (pass .v files or directories)",
              file=sys.stderr)
        return 1
    root = Path(args.index_dir)
    # The model is only mandatory for a brand-new index: resumes and
    # appends default to the model the index already carries.
    have_base = (not args.fresh
                 and ((root / "meta.json").is_file()
                      or (root / CHECKPOINT_NAME).is_file()))
    detector = None
    if args.model or not have_base:
        detector = _cli_detector(args.model, args, level=args.level)
        if detector is None:
            return 1
    progress = _ProgressPrinter().ingest if args.progress else None
    config = IngestConfig(jobs=args.jobs, flush_rows=args.flush_rows,
                          level=args.level,
                          use_cache=not args.no_cache,
                          chunks=not args.no_chunks, progress=progress)
    corpus, report = Corpus.ingest(args.index_dir, paths, detector,
                                   config, resume=not args.no_resume,
                                   fresh=args.fresh)
    ing = report["ingest"]
    # Same shape as `index build --json` so tooling can read either.
    report["throughput"] = {
        "wall_seconds": ing["wall_seconds"],
        "designs_per_sec": ing["designs_per_sec"],
        "rows_per_sec": ing["rows_per_sec"],
    }
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        print(f"ingested {report['embedded']}/{report['files']} designs "
              f"({report['failures']} failures, {ing['ingest_mode']} "
              f"mode) with {report['jobs']} workers")
        print(f"throughput: {ing['designs_per_sec']:.1f} designs/s, "
              f"{ing['rows_per_sec']:.1f} rows/s over "
              f"{ing['wall_seconds']:.1f}s  ({ing['flushes']} flushes, "
              f"{ing['shards_written']} shard(s))")
        if ing["resumed"]:
            print(f"resumed from checkpoint: "
                  f"{ing['completed'] - ing['session_designs']} designs "
                  f"already done")
    if corpus is None:
        print(f"paused at {ing['completed']}/{ing['total']} designs; "
              f"rerun to resume from the checkpoint", file=sys.stderr)
        return 0
    for entry in corpus.entries[-report["files"]:]:
        if entry["status"] == "error":
            print(f"  FAILED {entry['path']}: {entry['error']}",
                  file=sys.stderr)
    return 0 if report["embedded"] or not report["failures"] else 1


def _cmd_index_add(args):
    paths = _collect_sources(args.sources)
    if not paths:
        print("error: no input files to add", file=sys.stderr)
        return 1
    corpus = Corpus.open(args.index_dir)
    report = corpus.add(paths, jobs=args.jobs)
    print(f"added {report['embedded']}/{report['files']} files "
          f"({report['embedded_fresh']} embedded fresh, "
          f"{report['embeddings_reused']} reused, "
          f"{report['failures']} failures)")
    print(f"index now: {len(corpus)} designs in "
          f"{corpus.shard_count} shard(s)")
    # Only this run's entries (appended last) — earlier failure entries
    # in the index must not be re-reported as this add's failures.
    for entry in corpus.entries[-report["files"]:]:
        if entry["status"] == "error":
            print(f"  FAILED {entry['path']}: {entry['error']}",
                  file=sys.stderr)
    # Partial failures are recorded, not fatal (same as build); but an
    # add that added nothing at all must not look like success.
    return 0 if report["embedded"] or not report["failures"] else 1


def _cmd_index_query(args):
    corpus = Corpus.open(args.index_dir)
    detector = (Detector.load(args.model) if args.model
                else corpus.detector())
    session = Session(detector=detector, corpus=corpus)
    graphs, labels, failures = [], [], 0
    for path in args.files:
        try:
            graphs.append(session.extract(Path(path), top=args.top))
            labels.append(path)
        except (ReproError, OSError) as exc:
            failures += 1
            print(f"error: {path}: {exc}", file=sys.stderr)
    if not graphs:
        return 1
    # One batched embed for every suspect, one engine pass for the batch.
    results = session.query(graphs, k=args.k, nprobe=args.nprobe,
                            exact=args.exact, labels=labels)
    serving = corpus.serving_description(nprobe=args.nprobe,
                                         exact=args.exact)
    piracy = 0
    if args.json:
        piracy = sum(match.flagged
                     for result in results for match in result)
        payload = {"index": str(args.index_dir), "designs": len(corpus),
                   "serving": serving, "delta": detector.delta,
                   "failures": failures,
                   "results": [result.as_dict() for result in results]}
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        for result in results:
            if len(labels) > 1:
                print(f"== {result.label}")
            print(f"top {len(result)} of {len(corpus)} indexed designs "
                  f"({serving}, delta {detector.delta:+.4f}):")
            for match in result:
                flag = "PIRACY" if match.flagged else "      "
                piracy += match.flagged
                prob = ("" if match.probability is None
                        else f"  p={match.probability:.3f} "
                             f"[{match.confidence_low:.3f}, "
                             f"{match.confidence_high:.3f}]")
                print(f"  {match.rank:2d}. {match.score:+.4f} {flag} "
                      f"{match.design:16s} {match.name}{prob}")
    if piracy:
        return 2
    return 1 if failures else 0


def _cmd_index_migrate(args):
    try:
        Corpus.open(args.index_dir)
    except ReproError:
        pass  # not loadable as v4 — attempt the actual migration
    else:
        print(f"{args.index_dir} is already format v4; nothing to do")
        return 0
    corpus = Corpus.migrate(args.index_dir)
    ivf = (f", ivf quantizer with {corpus.ivf_clusters} clusters"
           if corpus.ivf_clusters else "")
    print(f"migrated {args.index_dir} to format v4: {len(corpus)} "
          f"embeddings in {corpus.shard_count} shard(s){ivf}")
    print("note: migrated indexes carry no chunk rows; rebuild to "
          "index subgraph chunks for partial-theft locality")
    return 0


def _cmd_index_stats(args):
    stats = Corpus.open(args.index_dir).stats()
    build = stats.pop("build", {})
    for key in ("level", "entries", "embedded", "failures", "designs",
                "design_rows", "chunk_rows", "signed_entries", "hidden",
                "shards", "ivf_clusters", "cache_entries", "cache_bytes"):
        print(f"{key:14s} {stats[key]}")
    print(f"{'model_hash':14s} {stats['model_hash'][:16]}...")
    if build:
        cache = build.get("cache") or {}
        print(f"{'last build':14s} {build.get('embedded', '?')} embedded, "
              f"{cache.get('hits', 0)} cache hits, "
              f"{build.get('extract_seconds', 0.0):.3f}s extract, "
              f"{build.get('embed_seconds', 0.0):.3f}s embed")
    return 0


def _cmd_eval(args):
    from repro.eval import EvalConfig, run_evaluation

    # Flags default to None and fall back to the EvalConfig defaults, so
    # the CLI, Session.evaluate, and bench_eval can never disagree on
    # what "the small default corpus" is.
    def fallback(value, default):
        return value if value is not None else default

    config = EvalConfig(
        level=args.level,
        families=tuple(fallback(args.families, EvalConfig.families)),
        holdouts=tuple(fallback(args.holdouts, EvalConfig.holdouts)),
        corpus_instances=fallback(args.instances,
                                  EvalConfig.corpus_instances),
        suspects_per_design=fallback(args.suspects,
                                     EvalConfig.suspects_per_design),
        scenarios=tuple(args.scenarios) if args.scenarios else None,
        recall_ks=tuple(fallback(args.recall_at, EvalConfig.recall_ks)),
        seed=fallback(args.seed, EvalConfig.seed),
        # No explicit --epochs: train unless untrained was asked for.
        epochs=fallback(args.epochs,
                        0 if args.allow_untrained else EvalConfig.epochs),
        train_instances=fallback(args.train_instances,
                                 EvalConfig.train_instances),
        theft_fractions=tuple(args.theft_fraction)
        if args.theft_fraction else EvalConfig.theft_fractions,
        check_equivalence=not args.no_equivalence,
        baselines=tuple(args.baselines) if args.baselines else (),
        allow_untrained=args.allow_untrained,
        negative_families=tuple(fallback(args.negative_families,
                                         EvalConfig.negative_families)),
        negatives_per_design=fallback(args.negatives_per_design,
                                      EvalConfig.negatives_per_design),
        calibration=not args.no_calibration,
        calibration_method=fallback(args.calibration_method,
                                    EvalConfig.calibration_method),
        hard_negatives=fallback(args.hard_negatives,
                                EvalConfig.hard_negatives),
        hard_negative_epochs=fallback(args.hard_negative_epochs,
                                      EvalConfig.hard_negative_epochs),
        jobs=args.jobs)
    if not args.model and config.epochs > 0 and not args.json:
        print(f"training a {config.level}-level model "
              f"({config.epochs} epochs) ...", file=sys.stderr)
    report = run_evaluation(config, workdir=args.workdir,
                            model=args.model)
    if args.out:
        Path(args.out).write_text(report.to_json() + "\n")
        print(f"report written to {args.out}", file=sys.stderr)
    if args.json:
        print(report.to_json())
    else:
        print(report.render_text())
    return 0


def _cmd_attack(args):
    from repro.attacks import run_attack
    from repro.netlist.verilog_io import write_netlist
    from repro.synth import synthesize_verilog

    text = Path(args.file).read_text()
    netlist = synthesize_verilog(text, top=args.top)
    options = {}
    if args.library:
        options["library"] = args.library
    if args.name:
        options["name"] = args.name
    result = run_attack(args.attack, netlist, seed=args.seed,
                        check=args.check, vectors=args.vectors, **options)
    source = write_netlist(result.netlist)
    if args.out:
        Path(args.out).write_text(source)
        print(f"attacked netlist written to {args.out}", file=sys.stderr)
    if args.provenance:
        Path(args.provenance).write_text(
            json.dumps(result.provenance, indent=1, sort_keys=True) + "\n")
        print(f"provenance written to {args.provenance}", file=sys.stderr)
    if args.json:
        print(json.dumps({
            "attack": result.attack,
            "base_gates": netlist.num_gates,
            "gates": result.netlist.num_gates,
            "semantics_preserving": result.semantics_preserving,
            "provenance": result.provenance,
        }, indent=1, sort_keys=True))
    elif not args.out:
        print(source, end="")
    else:
        stages = " -> ".join(s["stage"]
                             for s in result.provenance["stages"])
        print(f"{result.attack}: {netlist.num_gates} -> "
              f"{result.netlist.num_gates} gates via {stages}")
    return 0


def _cmd_calibrate(args):
    from repro.calib import ARTIFACT_NAME
    from repro.eval import EvalConfig

    session = Session.open(args.index_dir, model=args.model)
    config = EvalConfig(level=session.corpus.level,
                        calibration_method=args.method,
                        calibration_seed=args.seed)
    start = time.monotonic()
    artifact = session.calibrate(config=config, bootstrap=args.bootstrap,
                                 save=not args.no_save)
    seconds = time.monotonic() - start
    summary = artifact.describe()
    summary["seconds"] = round(seconds, 3)
    summary["artifact"] = (None if args.no_save
                           else str(Path(args.index_dir) / ARTIFACT_NAME))
    if args.json:
        print(json.dumps(summary, indent=1, sort_keys=True))
        return 0
    print(f"calibration fit on {summary.get('suspects', '?')} suspects "
          f"({summary.get('positives', '?')} genuine / "
          f"{summary.get('negatives', '?')} impostor) in {seconds:.1f}s")
    print(f"tiers: {' + '.join(summary['tiers'])}  "
          f"pair method {artifact.pair.method} "
          f"(threshold {artifact.pair.threshold:.3f})  "
          f"match threshold {artifact.match.threshold:.3f}")
    if not args.no_save:
        print(f"artifact written to {summary['artifact']}")
        print("queries and compares against this index now report "
              "calibrated probabilities")
    return 0


def _cmd_serve(args):
    from repro.server import run

    corpus = Corpus.open(args.index_dir)
    detector = (Detector.load(args.model) if args.model
                else corpus.detector())
    _apply_delta_override(detector, args)
    session = Session(detector=detector, corpus=corpus)
    return run(session, host=args.host, port=args.port,
               max_batch=args.max_batch,
               batch_window_s=args.batch_window_ms / 1000.0,
               workers=args.workers, max_pending=args.max_pending,
               log_json=args.log_json)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="gnn4ip",
        description="GNN4IP: hardware IP piracy detection (DAC'21 repro)")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_extract = sub.add_parser("extract-dfg",
                               help="extract and summarize a DFG")
    p_extract.add_argument("file")
    p_extract.add_argument("--top", default=None, help="top module name")
    p_extract.add_argument("--labels", action="store_true",
                           help="print the label histogram")
    p_extract.add_argument("--edges", action="store_true",
                           help="print the edge list")
    p_extract.set_defaults(func=_cmd_extract)

    p_train = sub.add_parser("train", help="train on the generated corpus")
    p_train.add_argument("--families", nargs="*", default=None)
    p_train.add_argument("--instances", type=int, default=4)
    p_train.add_argument("--epochs", type=int, default=40)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--level", choices=("rtl", "netlist"),
                         default="rtl",
                         help="train on RTL dataflow graphs or "
                              "synthesized gate-level netlists")
    p_train.add_argument("--save", default=None, help="output .npz path")
    p_train.set_defaults(func=_cmd_train)

    p_compare = sub.add_parser("compare",
                               help="piracy check on two Verilog files")
    p_compare.add_argument("file_a")
    p_compare.add_argument("file_b")
    p_compare.add_argument("--model", default=None,
                           help=".npz from 'gnn4ip train --save'")
    p_compare.add_argument("--index", default=None,
                           help="fingerprint index dir; reuses its model, "
                                "stored embeddings, and DFG cache")
    p_compare.add_argument("--delta", type=float, default=None)
    p_compare.add_argument("--seed", type=int, default=0)
    p_compare.add_argument("--level", choices=("rtl", "netlist"),
                           default=None,
                           help="compare RTL dataflow graphs (default) or "
                                "synthesized gate-level netlists; must "
                                "match the model/index level")
    p_compare.add_argument("--allow-untrained", action="store_true",
                           help="permit running without --model/--index "
                                "(untrained weights; scores are noise)")
    p_compare.add_argument("--json", action="store_true",
                           help="machine-readable output (same shape as "
                                "the server's /v1/compare response)")
    p_compare.set_defaults(func=_cmd_compare)

    p_corpus = sub.add_parser("corpus", help="list design families")
    p_corpus.set_defaults(func=_cmd_corpus)

    p_index = sub.add_parser("index",
                             help="persistent hardware-fingerprint index")
    index_sub = p_index.add_subparsers(dest="index_command", required=True)

    p_build = index_sub.add_parser(
        "build", help="extract + embed a corpus into an index")
    p_build.add_argument("index_dir", help="index output directory")
    p_build.add_argument("sources", nargs="*",
                         help="Verilog files or directories (scanned "
                              "recursively for *.v)")
    p_build.add_argument("--families", nargs="*", default=None,
                         help="also index generated RTL families "
                              "(no names = the default benchmark set)")
    p_build.add_argument("--instances", type=int, default=4,
                         help="instances per generated family")
    p_build.add_argument("--model", default=None,
                         help=".npz model (or --allow-untrained)")
    p_build.add_argument("--allow-untrained", action="store_true",
                         help="permit building without --model "
                              "(untrained weights; scores are noise)")
    p_build.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default: auto)")
    p_build.add_argument("--no-cache", action="store_true",
                         help="bypass the content-addressed graph cache")
    p_build.add_argument("--no-chunks", action="store_true",
                         help="index whole designs only (skip the "
                              "subgraph-chunk rows that power "
                              "partial-theft locality)")
    p_build.add_argument("--seed", type=int, default=0)
    p_build.add_argument("--level", choices=("rtl", "netlist"),
                         default=None,
                         help="extraction level (default: the model's "
                              "level, rtl for fresh models)")
    p_build.add_argument("--progress", action="store_true",
                         help="periodic progress lines on stderr")
    p_build.add_argument("--json", action="store_true",
                         help="machine-readable build report (including "
                              "a throughput summary)")
    p_build.set_defaults(func=_cmd_index_build)

    p_ingest = index_sub.add_parser(
        "ingest",
        help="streaming multiprocess ingest with checkpointed resume "
             "(the production-scale build/add path; walks external "
             "Verilog trees)")
    p_ingest.add_argument("index_dir", help="index directory (created, "
                                            "resumed, or appended to)")
    p_ingest.add_argument("sources", nargs="+",
                          help="Verilog files or directory trees "
                               "(scanned recursively for *.v)")
    p_ingest.add_argument("--model", default=None,
                          help=".npz model; required for a new index, "
                               "defaults to the index's own model when "
                               "resuming or appending")
    p_ingest.add_argument("--allow-untrained", action="store_true",
                          help="permit a new index without --model "
                               "(untrained weights; scores are noise)")
    p_ingest.add_argument("--jobs", type=int, default=None,
                          help="extract+embed worker processes "
                               "(default: auto)")
    p_ingest.add_argument("--flush-rows", type=int, default=2048,
                          help="embedding rows buffered between durable "
                               "shard flushes (bounds peak memory)")
    p_ingest.add_argument("--fresh", action="store_true",
                          help="discard any checkpoint and existing "
                               "index; start from scratch")
    p_ingest.add_argument("--no-resume", action="store_true",
                          help="fail instead of resuming when a "
                               "checkpoint exists")
    p_ingest.add_argument("--no-cache", action="store_true",
                          help="bypass the content-addressed graph cache")
    p_ingest.add_argument("--no-chunks", action="store_true",
                          help="index whole designs only (new indexes; "
                               "appends follow the index's own config)")
    p_ingest.add_argument("--seed", type=int, default=0)
    p_ingest.add_argument("--level", choices=("rtl", "netlist"),
                          default=None,
                          help="extraction level for a new index "
                               "(default: the model's level)")
    p_ingest.add_argument("--progress", action="store_true",
                          help="periodic progress lines on stderr "
                               "(designs done/total, rows/s, ETA)")
    p_ingest.add_argument("--json", action="store_true",
                          help="machine-readable ingest report with the "
                               "throughput summary")
    p_ingest.set_defaults(func=_cmd_index_ingest)

    p_add = index_sub.add_parser(
        "add", help="append designs to an existing index (no rebuild)")
    p_add.add_argument("index_dir")
    p_add.add_argument("sources", nargs="+",
                       help="Verilog files or directories (scanned "
                            "recursively for *.v)")
    p_add.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: auto)")
    p_add.set_defaults(func=_cmd_index_add)

    p_query = index_sub.add_parser(
        "query", help="rank indexed designs against suspect files")
    p_query.add_argument("index_dir")
    p_query.add_argument("files", nargs="+",
                         help="suspect Verilog files (embedded as one "
                              "batch, one ranked table each)")
    p_query.add_argument("-k", type=int, default=5,
                         help="number of hits to report")
    p_query.add_argument("--model", default=None,
                         help="override model (fingerprint must match)")
    p_query.add_argument("--top", default=None, help="top module name")
    p_query.add_argument("--nprobe", type=int, default=None,
                         help="IVF clusters to probe (implies the "
                              "approximate pre-filter when the index "
                              "has a quantizer)")
    p_query.add_argument("--exact", action="store_true",
                         help="score every stored fingerprint, bypassing "
                              "the IVF pre-filter")
    p_query.add_argument("--json", action="store_true",
                         help="machine-readable output (same match shape "
                              "as the server's /v1/query response)")
    p_query.set_defaults(func=_cmd_index_query)

    p_migrate = index_sub.add_parser(
        "migrate", help="convert a v2/v3 index to the multi-granularity "
                        "v4 format in place (no re-embedding)")
    p_migrate.add_argument("index_dir")
    p_migrate.set_defaults(func=_cmd_index_migrate)

    p_stats = index_sub.add_parser("stats", help="index + cache statistics")
    p_stats.add_argument("index_dir")
    p_stats.set_defaults(func=_cmd_index_stats)

    p_eval = sub.add_parser(
        "eval", help="adversarial piracy-scenario evaluation "
                     "(recall@k, confusion at delta, AUC per scenario)")
    p_eval.add_argument("--model", default=None,
                        help=".npz model to evaluate (default: train one "
                             "on the evaluation families)")
    p_eval.add_argument("--level", choices=("rtl", "netlist"),
                        default="netlist",
                        help="corpus and detection level")
    p_eval.add_argument("--families", nargs="*", default=None,
                        help="corpus design families (default: the small "
                             "default corpus)")
    p_eval.add_argument("--holdouts", nargs="*", default=None,
                        help="held-out families for negatives and graft "
                             "hosts (never indexed)")
    p_eval.add_argument("--instances", type=int, default=None,
                        help="corpus instances per design")
    p_eval.add_argument("--suspects", type=int, default=None,
                        help="suspects per design per scenario")
    p_eval.add_argument("--scenarios", nargs="*", default=None,
                        help="scenario subset (default: all; see "
                             "docs/evaluation.md)")
    p_eval.add_argument("--recall-at", nargs="*", type=int, default=None,
                        help="k values for recall@k (default: 1 5 10)")
    p_eval.add_argument("--epochs", type=int, default=None,
                        help="training epochs when no --model is given")
    p_eval.add_argument("--train-instances", type=int, default=None,
                        help="training instances per design")
    p_eval.add_argument("--theft-fraction", nargs="+", type=float,
                        default=None,
                        help="fraction(s) of stolen logic grafted in the "
                             "partial-theft scenario (each fraction gets "
                             "its own suspect sweep)")
    p_eval.add_argument("--baselines", nargs="*", default=None,
                        help="also score classical baselines "
                             "(wl_kernel, spectral)")
    p_eval.add_argument("--no-equivalence", action="store_true",
                        help="skip the functional-equivalence spot checks")
    p_eval.add_argument("--no-calibration", action="store_true",
                        help="skip the out-of-fold calibration quality "
                             "block (ECE, calibrated confusion)")
    p_eval.add_argument("--calibration-method",
                        choices=("platt", "isotonic"), default=None,
                        help="pair-tier calibrator (default: platt)")
    p_eval.add_argument("--negative-families", nargs="*", default=None,
                        help="impostor families queried as never-indexed "
                             "negatives for calibration (default: a "
                             "curated four-family pool)")
    p_eval.add_argument("--negatives-per-design", type=int, default=None,
                        help="suspects per negative family design")
    p_eval.add_argument("--hard-negatives", type=int, default=None,
                        help="mine N hard negatives per training design "
                             "and fine-tune on them (0 = off, the "
                             "default; training is unchanged when off)")
    p_eval.add_argument("--hard-negative-epochs", type=int, default=None,
                        help="fine-tuning epochs for mined hard "
                             "negatives")
    p_eval.add_argument("--allow-untrained", action="store_true",
                        help="evaluate an untrained model (scores are "
                             "noise; smoke runs only)")
    p_eval.add_argument("--seed", type=int, default=None)
    p_eval.add_argument("--jobs", type=int, default=None,
                        help="index-build worker processes")
    p_eval.add_argument("--workdir", default=None,
                        help="directory for the materialized corpus and "
                             "index (default: a temporary directory)")
    p_eval.add_argument("--out", default=None,
                        help="also write the JSON report to this path")
    p_eval.add_argument("--json", action="store_true",
                        help="print the machine-readable report")
    p_eval.set_defaults(func=_cmd_eval)

    p_attack = sub.add_parser(
        "attack", help="stage a named attack pipeline on a Verilog design "
                       "(emits the attacked netlist + provenance chain)")
    p_attack.add_argument("attack",
                          choices=("tech_remap", "retime", "fsm_reencode",
                                   "wrapper", "trojan"),
                          help="attack pipeline to stage")
    p_attack.add_argument("file", help="Verilog source (RTL or netlist)")
    p_attack.add_argument("--top", default=None, help="top module name")
    p_attack.add_argument("--seed", type=int, default=0,
                          help="pipeline seed (stages derive child seeds)")
    p_attack.add_argument("--library",
                          choices=("nand", "nor", "aig"), default=None,
                          help="tech_remap target vocabulary "
                               "(default: seed-chosen)")
    p_attack.add_argument("--name", default=None,
                          help="module name of the attacked netlist")
    p_attack.add_argument("--check", action="store_true",
                          help="run generation-time equivalence (or "
                               "trojan on/off-trigger) checks")
    p_attack.add_argument("--vectors", type=int, default=24,
                          help="random vectors per check")
    p_attack.add_argument("--out", default=None,
                          help="write the attacked Verilog here "
                               "(default: stdout)")
    p_attack.add_argument("--provenance", default=None,
                          help="write the provenance chain JSON here")
    p_attack.add_argument("--json", action="store_true",
                          help="machine-readable summary (includes the "
                               "provenance chain)")
    p_attack.set_defaults(func=_cmd_attack)

    p_calibrate = sub.add_parser(
        "calibrate",
        help="fit probability calibration for an index (writes "
             "calibration.json next to the shards; queries then report "
             "calibrated probabilities and confidence bands)")
    p_calibrate.add_argument("index_dir", help="fingerprint index to "
                                               "calibrate")
    p_calibrate.add_argument("--model", default=None,
                             help="override model (fingerprint must "
                                  "match the index)")
    p_calibrate.add_argument("--method", choices=("platt", "isotonic"),
                             default="platt",
                             help="pair-tier calibrator family")
    p_calibrate.add_argument("--bootstrap", type=int, default=32,
                             help="bootstrap replicas behind the "
                                  "confidence bands (0 disables bands)")
    p_calibrate.add_argument("--seed", type=int, default=0,
                             help="bootstrap resampling seed")
    p_calibrate.add_argument("--no-save", action="store_true",
                             help="fit and report without writing the "
                                  "artifact")
    p_calibrate.add_argument("--json", action="store_true",
                             help="machine-readable summary")
    p_calibrate.set_defaults(func=_cmd_calibrate)

    p_serve = sub.add_parser(
        "serve", help="run the async HTTP detection service over an index")
    p_serve.add_argument("index_dir", help="fingerprint index to serve")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8000,
                         help="listen port (0 = ephemeral; the real port "
                              "is announced on stdout)")
    p_serve.add_argument("--model", default=None,
                         help="override model (fingerprint must match "
                              "for stored-embedding reuse)")
    p_serve.add_argument("--delta", type=float, default=None,
                         help="decision-boundary override")
    p_serve.add_argument("--max-batch", type=int, default=256,
                         help="max concurrent requests per micro-batch")
    p_serve.add_argument("--batch-window-ms", type=float, default=2.0,
                         help="how long a request waits for concurrent "
                              "arrivals to coalesce")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="fork N partitioned query workers and "
                              "scatter-gather each batch across them "
                              "(0 = serve in-process; results are "
                              "bit-identical either way)")
    p_serve.add_argument("--max-pending", type=int, default=None,
                         help="refuse queries past this many pending "
                              "requests with 429 + Retry-After "
                              "(default: unbounded)")
    p_serve.add_argument("--log-json", action="store_true",
                         help="emit one JSON access-log line per request")
    p_serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
